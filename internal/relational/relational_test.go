package relational

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema("test")
	s.MustAddTable(MustTable("artists",
		Column{Name: "id", Type: Integer},
		Column{Name: "name", Type: String},
	))
	s.MustAddTable(MustTable("albums",
		Column{Name: "id", Type: Integer},
		Column{Name: "title", Type: String},
		Column{Name: "artist", Type: Integer},
		Column{Name: "rating", Type: Float},
	))
	s.MustAddConstraint(PrimaryKey{Table: "artists", Columns: []string{"id"}})
	s.MustAddConstraint(PrimaryKey{Table: "albums", Columns: []string{"id"}})
	s.MustAddConstraint(NotNullConstraint{Table: "albums", Column: "title"})
	s.MustAddConstraint(ForeignKey{Table: "albums", Columns: []string{"artist"}, RefTable: "artists", RefColumns: []string{"id"}})
	s.MustAddConstraint(UniqueConstraint{Table: "artists", Columns: []string{"name"}})
	return s
}

func TestTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{String, Integer, Float, Bool, Time} {
		parsed, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if parsed != typ {
			t.Errorf("round trip %v -> %v", typ, parsed)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValidValue(t *testing.T) {
	cases := []struct {
		typ  Type
		v    Value
		want bool
	}{
		{String, "x", true},
		{String, int64(1), false},
		{Integer, int64(1), true},
		{Integer, 1, false}, // plain int is not canonical
		{Float, 1.5, true},
		{Bool, true, true},
		{Time, time.Now(), true},
		{Integer, nil, true}, // NULL is valid everywhere
	}
	for _, c := range cases {
		if got := ValidValue(c.typ, c.v); got != c.want {
			t.Errorf("ValidValue(%v, %#v) = %v, want %v", c.typ, c.v, got, c.want)
		}
	}
}

func TestCoerce(t *testing.T) {
	if v, err := Coerce(Integer, "42"); err != nil || v.(int64) != 42 {
		t.Errorf("Coerce(Integer, \"42\") = %v, %v", v, err)
	}
	if v, err := Coerce(Integer, 7); err != nil || v.(int64) != 7 {
		t.Errorf("Coerce(Integer, 7) = %v, %v", v, err)
	}
	if v, err := Coerce(Float, "3.5"); err != nil || v.(float64) != 3.5 {
		t.Errorf("Coerce(Float, \"3.5\") = %v, %v", v, err)
	}
	if v, err := Coerce(String, int64(9)); err != nil || v.(string) != "9" {
		t.Errorf("Coerce(String, 9) = %v, %v", v, err)
	}
	if _, err := Coerce(Integer, "4:43"); err == nil {
		t.Error("Coerce(Integer, \"4:43\") should fail")
	}
	if _, err := Coerce(Integer, 1.5); err == nil {
		t.Error("Coerce(Integer, 1.5) should fail")
	}
	if v, err := Coerce(Bool, "true"); err != nil || v.(bool) != true {
		t.Errorf("Coerce(Bool, \"true\") = %v, %v", v, err)
	}
	if v, err := Coerce(Time, "2015-03-23"); err != nil || v.(time.Time).Year() != 2015 {
		t.Errorf("Coerce(Time, date) = %v, %v", v, err)
	}
	if v, err := Coerce(Float, nil); err != nil || v != nil {
		t.Errorf("Coerce(Float, nil) = %v, %v; want nil, nil", v, err)
	}
}

func TestCastable(t *testing.T) {
	if !Castable(String, int64(5)) {
		t.Error("integers must be castable to strings (paper Example 3.3)")
	}
	if Castable(Integer, "4:43") {
		t.Error("\"4:43\" must not be castable to integer")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{nil, nil, 0},
		{nil, int64(1), -1},
		{int64(1), nil, 1},
		{int64(1), int64(2), -1},
		{"a", "b", -1},
		{2.5, 2.5, 0},
		{false, true, -1},
	}
	for _, c := range cases {
		if got := CompareValues(c.a, c.b); got != c.want {
			t.Errorf("CompareValues(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareValuesAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return CompareValues(a, b) == -CompareValues(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return CompareValues(a, b) == -CompareValues(b, a)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaConstruction(t *testing.T) {
	s := testSchema(t)
	if s.NumTables() != 2 {
		t.Fatalf("NumTables = %d, want 2", s.NumTables())
	}
	if s.NumAttributes() != 6 {
		t.Fatalf("NumAttributes = %d, want 6", s.NumAttributes())
	}
	if !s.NotNull("albums", "title") {
		t.Error("albums.title should be NOT NULL")
	}
	if !s.NotNull("albums", "id") {
		t.Error("PK column albums.id should be NOT NULL")
	}
	if s.NotNull("albums", "rating") {
		t.Error("albums.rating should be nullable")
	}
	if !s.Unique("artists", "name") {
		t.Error("artists.name should be unique")
	}
	if !s.Unique("artists", "id") {
		t.Error("PK artists.id should be unique")
	}
	if s.Unique("albums", "artist") {
		t.Error("albums.artist should not be unique")
	}
	pk, ok := s.PrimaryKeyOf("albums")
	if !ok || pk.Columns[0] != "id" {
		t.Errorf("PrimaryKeyOf(albums) = %v, %v", pk, ok)
	}
	fks := s.ForeignKeysOf("albums")
	if len(fks) != 1 || fks[0].RefTable != "artists" {
		t.Errorf("ForeignKeysOf(albums) = %v", fks)
	}
}

func TestSchemaRejectsDuplicates(t *testing.T) {
	s := NewSchema("dup")
	s.MustAddTable(MustTable("t", Column{Name: "a", Type: String}))
	if err := s.AddTable(MustTable("t", Column{Name: "b", Type: String})); err == nil {
		t.Error("duplicate table must be rejected")
	}
	if _, err := NewTable("x", Column{Name: "a", Type: String}, Column{Name: "a", Type: Integer}); err == nil {
		t.Error("duplicate column must be rejected")
	}
	if err := s.AddConstraint(NotNullConstraint{Table: "missing", Column: "a"}); err == nil {
		t.Error("constraint on missing table must be rejected")
	}
	if err := s.AddConstraint(NotNullConstraint{Table: "t", Column: "missing"}); err == nil {
		t.Error("constraint on missing column must be rejected")
	}
	if err := s.AddConstraint(ForeignKey{Table: "t", Columns: []string{"a", "a"}, RefTable: "t", RefColumns: []string{"a"}}); err == nil {
		t.Error("arity-mismatched foreign key must be rejected")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	db := NewDatabase(testSchema(t))
	if err := db.Insert("artists", 1, "Lynyrd Skynyrd"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := db.Insert("artists", "not-an-int", "X"); err == nil {
		t.Error("type-mismatched insert must fail")
	}
	if err := db.Insert("artists", 1); err == nil {
		t.Error("arity-mismatched insert must fail")
	}
	if err := db.Insert("nope", 1); err == nil {
		t.Error("insert into unknown table must fail")
	}
	// Values are canonicalized.
	if v := db.Rows("artists")[0][0]; v.(int64) != 1 {
		t.Errorf("stored id = %#v, want int64(1)", v)
	}
}

func TestInsertMap(t *testing.T) {
	db := NewDatabase(testSchema(t))
	if err := db.InsertMap("albums", map[string]Value{"id": 1, "title": "Second Helping"}); err != nil {
		t.Fatalf("InsertMap: %v", err)
	}
	row := db.Rows("albums")[0]
	if row[2] != nil || row[3] != nil {
		t.Errorf("missing columns should be NULL, got %v", row)
	}
	if err := db.InsertMap("albums", map[string]Value{"bogus": 1}); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestValidateFindsAllViolationKinds(t *testing.T) {
	db := NewDatabase(testSchema(t))
	db.MustInsert("artists", 1, "A")
	db.MustInsert("artists", 1, "B")           // duplicate PK
	db.MustInsert("artists", nil, "C")         // NULL PK
	db.MustInsert("albums", 10, nil, 1, nil)   // NULL title
	db.MustInsert("albums", 11, "T", 99, nil)  // dangling FK
	db.MustInsert("albums", 12, "U", nil, nil) // NULL FK: fine

	viols := db.Validate()
	kinds := map[string]int{}
	for _, v := range viols {
		switch v.Constraint.(type) {
		case PrimaryKey:
			kinds["pk"]++
		case NotNullConstraint:
			kinds["nn"]++
		case ForeignKey:
			kinds["fk"]++
		case UniqueConstraint:
			kinds["uq"]++
		}
	}
	if kinds["pk"] != 2 { // one NULL component + one duplicate
		t.Errorf("pk violations = %d, want 2 (%v)", kinds["pk"], viols)
	}
	if kinds["nn"] != 1 {
		t.Errorf("not-null violations = %d, want 1", kinds["nn"])
	}
	if kinds["fk"] != 1 {
		t.Errorf("fk violations = %d, want 1", kinds["fk"])
	}
	if kinds["uq"] != 0 {
		t.Errorf("unique violations = %d, want 0", kinds["uq"])
	}
}

func TestUniqueIgnoresNulls(t *testing.T) {
	s := NewSchema("u")
	s.MustAddTable(MustTable("t", Column{Name: "a", Type: String}))
	s.MustAddConstraint(UniqueConstraint{Table: "t", Columns: []string{"a"}})
	db := NewDatabase(s)
	db.MustInsert("t", nil)
	db.MustInsert("t", nil)
	if v := db.Validate(); len(v) != 0 {
		t.Errorf("NULLs must not collide under UNIQUE: %v", v)
	}
}

func TestCompositeKeySafety(t *testing.T) {
	// ("ab","c") and ("a","bc") must produce different composite keys.
	k1, _ := compositeKey(Row{"ab", "c"}, []int{0, 1})
	k2, _ := compositeKey(Row{"a", "bc"}, []int{0, 1})
	if k1 == k2 {
		t.Errorf("composite keys collide: %q", k1)
	}
}

func TestDistinctValues(t *testing.T) {
	db := NewDatabase(testSchema(t))
	db.MustInsert("artists", 1, "A")
	db.MustInsert("artists", 2, "B")
	db.MustInsert("albums", 1, "t1", 1, nil)
	db.MustInsert("albums", 2, "t2", 1, nil)
	db.MustInsert("albums", 3, "t3", 2, nil)
	db.MustInsert("albums", 4, "t4", nil, nil)
	distinct, nulls, err := db.DistinctValues("albums", "artist")
	if err != nil {
		t.Fatal(err)
	}
	if len(distinct) != 2 || nulls != 1 {
		t.Errorf("DistinctValues = %v, %d; want 2 values, 1 null", distinct, nulls)
	}
}

func TestEquiJoin(t *testing.T) {
	db := NewDatabase(testSchema(t))
	db.MustInsert("artists", 1, "A")
	db.MustInsert("artists", 2, "B")
	db.MustInsert("albums", 10, "x", 1, nil)
	db.MustInsert("albums", 11, "y", 1, nil)
	db.MustInsert("albums", 12, "z", nil, nil)
	pairs, err := db.EquiJoin("albums", "artist", "artists", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("join pairs = %v, want 2", pairs)
	}
	for _, p := range pairs {
		if db.Rows("artists")[p.Right][1].(string) != "A" {
			t.Errorf("join matched wrong artist: %v", p)
		}
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	db := NewDatabase(testSchema(t))
	db.MustInsert("artists", 1, "A")
	db.MustInsert("artists", 2, "B")
	db.MustInsert("artists", 3, "C")
	db.Delete("artists", 1)
	if db.NumRows("artists") != 2 {
		t.Fatalf("rows after delete = %d", db.NumRows("artists"))
	}
	if db.Rows("artists")[1][1].(string) != "C" {
		t.Errorf("wrong row deleted")
	}
	if err := db.Update("artists", 0, "name", "AA"); err != nil {
		t.Fatal(err)
	}
	if db.Rows("artists")[0][1].(string) != "AA" {
		t.Error("update did not stick")
	}
	if err := db.Update("artists", 9, "name", "x"); err == nil {
		t.Error("out-of-range update must fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := NewDatabase(testSchema(t))
	db.MustInsert("artists", 1, "A")
	cp := db.Clone()
	if err := cp.Update("artists", 0, "name", "mutated"); err != nil {
		t.Fatal(err)
	}
	if db.Rows("artists")[0][1].(string) != "A" {
		t.Error("clone shares row storage with original")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDatabase(testSchema(t))
	db.MustInsert("albums", 1, "Sweet, \"Home\"", 1, 4.5)
	db.MustInsert("albums", 2, "Line\nBreak", nil, nil)
	var buf bytes.Buffer
	if err := db.WriteCSV("albums", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase(db.Schema)
	if err := db2.ReadCSV("albums", &buf); err != nil {
		t.Fatal(err)
	}
	if db2.NumRows("albums") != 2 {
		t.Fatalf("rows = %d", db2.NumRows("albums"))
	}
	r := db2.Rows("albums")[0]
	if r[1].(string) != "Sweet, \"Home\"" || r[3].(float64) != 4.5 {
		t.Errorf("row 0 = %v", r)
	}
	if db2.Rows("albums")[1][2] != nil {
		t.Error("empty field should load as NULL")
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	s := NewSchema("p")
	s.MustAddTable(MustTable("t",
		Column{Name: "a", Type: String},
		Column{Name: "b", Type: Integer},
	))
	f := func(strs []string, ints []int64) bool {
		db := NewDatabase(s)
		n := len(strs)
		if len(ints) < n {
			n = len(ints)
		}
		for i := 0; i < n; i++ {
			// CSV cannot distinguish "" from NULL; normalize.
			v := strs[i]
			if v == "" {
				v = "_"
			}
			db.MustInsert("t", v, ints[i])
		}
		var buf bytes.Buffer
		if err := db.WriteCSV("t", &buf); err != nil {
			return false
		}
		db2 := NewDatabase(s)
		if err := db2.ReadCSV("t", &buf); err != nil {
			return false
		}
		if db2.NumRows("t") != n {
			return false
		}
		for i := 0; i < n; i++ {
			a, b := db.Rows("t")[i], db2.Rows("t")[i]
			if CompareValues(a[0], b[0]) != 0 || CompareValues(a[1], b[1]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSchemaTextRoundTrip(t *testing.T) {
	s := testSchema(t)
	text := s.String()
	parsed, err := ParseSchemaText(text)
	if err != nil {
		t.Fatalf("ParseSchemaText: %v\n%s", err, text)
	}
	if parsed.String() != text {
		t.Errorf("schema text round trip mismatch:\n--- original\n%s\n--- parsed\n%s", text, parsed.String())
	}
}

func TestParseSchemaTextErrors(t *testing.T) {
	bad := []string{
		"",
		"table t(a text)", // table before schema
		"schema s\n  table t(a blob)",
		"schema s\n  PRIMARY KEY (t.a)", // constraint on missing table
		"schema s\n  gibberish here",
	}
	for _, text := range bad {
		if _, err := ParseSchemaText(text); err == nil {
			t.Errorf("ParseSchemaText(%q) should fail", text)
		}
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase(testSchema(t))
	db.MustInsert("artists", 1, "A")
	db.MustInsert("albums", 1, "T", 1, 3.25)
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase(db.Schema)
	if err := db2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if db2.NumRows("artists") != 1 || db2.NumRows("albums") != 1 {
		t.Errorf("loaded rows: artists=%d albums=%d", db2.NumRows("artists"), db2.NumRows("albums"))
	}
	if got := db2.Rows("albums")[0][3].(float64); math.Abs(got-3.25) > 1e-12 {
		t.Errorf("rating = %v", got)
	}
}

func TestFormatValue(t *testing.T) {
	if FormatValue(nil) != "" {
		t.Error("NULL should format as empty string")
	}
	if got := FormatValue(int64(42)); got != "42" {
		t.Errorf("FormatValue(42) = %q", got)
	}
	if got := FormatValue(1.5); got != "1.5" {
		t.Errorf("FormatValue(1.5) = %q", got)
	}
	if !strings.Contains(FormatValue(time.Date(2015, 3, 23, 0, 0, 0, 0, time.UTC)), "2015-03-23") {
		t.Error("time formatting")
	}
}

func TestAccessorsAndMisc(t *testing.T) {
	s := testSchema(t)
	db := NewDatabase(s)
	db.MustInsert("artists", 1, "A")
	db.MustInsert("albums", 1, "T", 1, nil)

	if got := db.TotalRows(); got != 2 {
		t.Errorf("TotalRows = %d", got)
	}
	if vs := db.MustColumn("artists", "name"); len(vs) != 1 || vs[0].(string) != "A" {
		t.Errorf("MustColumn = %v", vs)
	}
	for _, c := range s.Constraints {
		if c.TableName() == "" {
			t.Errorf("constraint %v has empty table name", c)
		}
	}
	if col, ok := s.Table("albums").Column("title"); !ok || col.Type != String {
		t.Errorf("Column lookup = %v, %v", col, ok)
	}
	if _, ok := s.Table("albums").Column("nope"); ok {
		t.Error("missing column lookup should fail")
	}
	names := s.TableNames()
	if len(names) != 2 || names[0] != "artists" {
		t.Errorf("TableNames = %v", names)
	}
	if got := len(s.ConstraintsFor("albums")); got != 3 { // PK, NN title, FK
		t.Errorf("ConstraintsFor(albums) = %d", got)
	}
	text := s.String()
	for _, want := range []string{"schema test", "table artists", "PRIMARY KEY (albums.id)", "FOREIGN KEY"} {
		if !strings.Contains(text, want) {
			t.Errorf("schema rendering missing %q", want)
		}
	}
}

func TestMustPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	db := NewDatabase(testSchema(t))
	mustPanic("MustInsert", func() { db.MustInsert("nope", 1) })
	mustPanic("MustTable", func() { MustTable("t", Column{Name: "a"}, Column{Name: "a"}) })
	mustPanic("MustColumn", func() { db.MustColumn("nope", "x") })
	s := NewSchema("p")
	s.MustAddTable(MustTable("t", Column{Name: "a", Type: String}))
	mustPanic("MustAddTable", func() { s.MustAddTable(MustTable("t", Column{Name: "b", Type: String})) })
	mustPanic("MustAddConstraint", func() { s.MustAddConstraint(NotNullConstraint{Table: "zz", Column: "a"}) })
}

func TestSaveDirErrors(t *testing.T) {
	db := NewDatabase(testSchema(t))
	// Saving into a path that is a file must fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveDir(filepath.Join(blocker, "sub")); err == nil {
		t.Error("SaveDir into a file path must fail")
	}
	// Loading a malformed CSV must fail.
	good := filepath.Join(dir, "db")
	if err := db.SaveDir(good); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(good, "artists.csv"), []byte("wrong,header\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase(db.Schema)
	if err := db2.LoadDir(good); err == nil {
		t.Error("LoadDir with a mismatched header must fail")
	}
}
