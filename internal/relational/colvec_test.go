package relational

import (
	"reflect"
	"testing"
)

func stringTableDB(t *testing.T) *Database {
	t.Helper()
	s := NewSchema("cv")
	tab, err := NewTable("songs",
		Column{Name: "title", Type: String},
		Column{Name: "plays", Type: Integer},
	)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := s.AddTable(tab); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	db := NewDatabase(s)
	db.MustInsert("songs", "a", int64(1))
	db.MustInsert("songs", "b", int64(2))
	db.MustInsert("songs", "a", nil)
	db.MustInsert("songs", nil, int64(2))
	return db
}

func TestVectorDictionaryEncoding(t *testing.T) {
	db := stringTableDB(t)
	vec := db.Vector("songs", "title")
	if vec == nil {
		t.Fatal("Vector returned nil")
	}
	if vec.Type() != String || vec.Len() != 4 || vec.NullCount() != 1 {
		t.Fatalf("vector shape: type=%v len=%d nulls=%d", vec.Type(), vec.Len(), vec.NullCount())
	}
	if got := vec.Dict(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("dict = %v", got)
	}
	if got := vec.Counts(); !reflect.DeepEqual(got, []int{2, 1}) {
		t.Fatalf("counts = %v", got)
	}
	if got := vec.Codes(); !reflect.DeepEqual(got, []int32{0, 1, 0, 0}) {
		t.Fatalf("codes = %v", got)
	}
	if vec.Null(2) || !vec.Null(3) {
		t.Fatalf("null bitmap: row2=%v row3=%v", vec.Null(2), vec.Null(3))
	}
	if v := vec.Value(1); v != "b" {
		t.Fatalf("Value(1) = %v", v)
	}
	if v := vec.Value(3); v != nil {
		t.Fatalf("Value(3) = %v, want nil", v)
	}
	if got := vec.SortedDistinct(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("sorted distinct = %v", got)
	}
}

func TestVectorIncrementalMaintenance(t *testing.T) {
	db := stringTableDB(t)
	vec := db.Vector("songs", "title") // materialize, then mutate
	db.MustInsert("songs", "c", int64(3))
	if vec.Len() != 5 || vec.Value(4) != "c" {
		t.Fatalf("after insert: len=%d last=%v", vec.Len(), vec.Value(4))
	}
	if err := db.Update("songs", 0, "title", "b"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// "a" lost one occurrence, "b" gained one.
	if got := vec.Counts(); !reflect.DeepEqual(got, []int{1, 2, 1}) {
		t.Fatalf("counts after update = %v", got)
	}
	db.Delete("songs", 2) // drops the remaining "a": entry goes dead
	if got := vec.Counts(); !reflect.DeepEqual(got, []int{0, 2, 1}) {
		t.Fatalf("counts after delete = %v", got)
	}
	// Dead entries disappear from the distinct view; the memo was
	// invalidated by every mutation above.
	if got := vec.SortedDistinct(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("sorted distinct after mutations = %v", got)
	}
	// The vector stays aligned with the row view.
	rows := db.Rows("songs")
	if len(rows) != vec.Len() {
		t.Fatalf("row/vector length mismatch: %d vs %d", len(rows), vec.Len())
	}
	for i, row := range rows {
		if !reflect.DeepEqual(row[0], vec.Value(i)) {
			t.Errorf("row %d: row view %v, vector %v", i, row[0], vec.Value(i))
		}
	}
}

func TestVectorLazyMaterialization(t *testing.T) {
	db := stringTableDB(t)
	// Mutations before first access must be reflected once materialized.
	db.MustInsert("songs", "z", nil)
	db.Delete("songs", 0)
	vec := db.Vector("songs", "plays")
	if vec.Len() != db.NumRows("songs") {
		t.Fatalf("materialized length %d, rows %d", vec.Len(), db.NumRows("songs"))
	}
	if got := vec.Ints(); got[0] != 2 { // first surviving row is ("b", 2)
		t.Fatalf("ints = %v", got)
	}
}

func TestVectorUnknownAndClone(t *testing.T) {
	db := stringTableDB(t)
	if db.Vector("nope", "title") != nil || db.Vector("songs", "nope") != nil {
		t.Fatal("Vector must return nil for unknown table/column")
	}
	if db.Vectors("nope") != nil {
		t.Fatal("Vectors must return nil for unknown table")
	}
	vec := db.Vector("songs", "title")
	cl := db.Clone()
	// The clone materializes its own vectors; mutating the clone must not
	// disturb the original's.
	cl.MustInsert("songs", "q", int64(9))
	if got := db.Vector("songs", "title"); got != vec || got.Len() != 4 {
		t.Fatalf("original vector disturbed by clone mutation: len=%d", got.Len())
	}
	if cv := cl.Vector("songs", "title"); cv.Len() != 5 {
		t.Fatalf("clone vector len = %d", cv.Len())
	}
}

func TestBitmap(t *testing.T) {
	var b Bitmap
	if b.Get(0) || b.Get(1000) {
		t.Fatal("empty bitmap must read unset")
	}
	b.set(0)
	b.set(63)
	b.set(64)
	b.set(200)
	for _, i := range []int{0, 63, 64, 200} {
		if !b.Get(i) {
			t.Errorf("bit %d unset", i)
		}
	}
	if b.Get(1) || b.Get(199) || b.Get(201) {
		t.Error("unexpected bits set")
	}
	b.clear(64)
	if b.Get(64) || !b.Get(63) {
		t.Error("clear(64) wrong")
	}
	b.clear(100000) // out of range: no-op
}
