package relational

import "testing"

// Chunk layout and stamp maintenance: the sharded profiling kernels rely
// on (a) ChunkBounds covering the vector exactly, and (b) ChunkStamp
// changing whenever any row of the chunk changes — including rows shifted
// by a compacting delete — and never reverting to an earlier value.

func chunkVec(n int) *ColumnVector {
	v := newColumnVector(Integer)
	for i := 0; i < n; i++ {
		v.appendValue(int64(i))
	}
	return v
}

func TestChunkBoundsCoverVector(t *testing.T) {
	for _, n := range []int{0, 1, ChunkSize - 1, ChunkSize, ChunkSize + 1, 3*ChunkSize + 17} {
		v := chunkVec(n)
		want := (n + ChunkSize - 1) / ChunkSize
		if got := v.Chunks(); got != want {
			t.Fatalf("n=%d: Chunks() = %d, want %d", n, got, want)
		}
		covered := 0
		for k := 0; k < v.Chunks(); k++ {
			lo, hi := v.ChunkBounds(k)
			if lo != covered {
				t.Fatalf("n=%d chunk %d: lo = %d, want %d (gap or overlap)", n, k, lo, covered)
			}
			if hi <= lo || hi > n {
				t.Fatalf("n=%d chunk %d: bad hi %d (lo %d, len %d)", n, k, hi, lo, n)
			}
			if k < v.Chunks()-1 && hi-lo != ChunkSize {
				t.Fatalf("n=%d chunk %d: interior chunk has size %d, want %d", n, k, hi-lo, ChunkSize)
			}
			covered = hi
		}
		if covered != n {
			t.Fatalf("n=%d: chunks cover %d rows, want %d", n, covered, n)
		}
	}
}

func snapshotStamps(v *ColumnVector) []uint64 {
	out := make([]uint64, v.Chunks())
	for k := range out {
		out[k] = v.ChunkStamp(k)
	}
	return out
}

func TestChunkStampAppendTouchesLastChunkOnly(t *testing.T) {
	v := chunkVec(ChunkSize + 5) // two chunks
	before := snapshotStamps(v)
	v.appendValue(int64(99))
	after := snapshotStamps(v)
	if after[0] != before[0] {
		t.Fatalf("append changed stamp of untouched chunk 0: %d -> %d", before[0], after[0])
	}
	if after[1] == before[1] {
		t.Fatalf("append left last chunk stamp unchanged at %d", after[1])
	}
	if after[1] <= before[1] {
		t.Fatalf("stamp not monotone: %d -> %d", before[1], after[1])
	}
}

func TestChunkStampAppendGrowsNewChunk(t *testing.T) {
	v := chunkVec(ChunkSize) // exactly one full chunk
	before := snapshotStamps(v)
	v.appendValue(int64(7)) // first row of chunk 1
	if v.Chunks() != 2 {
		t.Fatalf("Chunks() = %d after crossing boundary, want 2", v.Chunks())
	}
	if got := v.ChunkStamp(0); got != before[0] {
		t.Fatalf("boundary append changed chunk 0 stamp: %d -> %d", before[0], got)
	}
	if v.ChunkStamp(1) == 0 {
		t.Fatalf("new chunk has zero stamp")
	}
}

func TestChunkStampUpdateTouchesOwnChunkOnly(t *testing.T) {
	v := chunkVec(2*ChunkSize + 10) // three chunks
	before := snapshotStamps(v)
	v.setValue(ChunkSize+3, int64(-1)) // middle chunk
	after := snapshotStamps(v)
	if after[0] != before[0] || after[2] != before[2] {
		t.Fatalf("update leaked into neighbor chunks: %v -> %v", before, after)
	}
	if after[1] == before[1] {
		t.Fatalf("update left its own chunk stamp unchanged")
	}
}

func TestChunkStampDeleteStampsFromFirstDrop(t *testing.T) {
	v := chunkVec(3*ChunkSize + 10) // four chunks
	before := snapshotStamps(v)
	// Drop a row in chunk 1: chunks 1..3 shift, chunk 0 is untouched.
	v.deleteRows(map[int]struct{}{ChunkSize + 2: {}})
	after := snapshotStamps(v)
	if after[0] != before[0] {
		t.Fatalf("delete changed stamp of chunk before the drop point: %d -> %d", before[0], after[0])
	}
	for k := 1; k < len(after); k++ {
		if after[k] == before[k] {
			t.Fatalf("delete left shifted chunk %d stamp unchanged at %d", k, after[k])
		}
	}
}

func TestChunkStampDeleteTruncatesTrailingStamps(t *testing.T) {
	v := chunkVec(2*ChunkSize + 4)
	// Delete the tail so only one chunk remains.
	drop := make(map[int]struct{})
	for i := ChunkSize - 2; i < v.Len(); i++ {
		drop[i] = struct{}{}
	}
	v.deleteRows(drop)
	if v.Chunks() != 1 {
		t.Fatalf("Chunks() = %d after truncating delete, want 1", v.Chunks())
	}
	if len(v.chunkStamps) != 1 {
		t.Fatalf("chunkStamps not truncated: len %d, want 1", len(v.chunkStamps))
	}
	// Stamps of regrown chunks must not collide with pre-delete values:
	// regrow chunk 1 and check its stamp exceeds everything seen before.
	high := v.stampEpoch
	for i := v.Len(); i < 2*ChunkSize; i++ {
		v.appendValue(int64(i))
	}
	if got := v.ChunkStamp(1); got <= high {
		t.Fatalf("regrown chunk stamp %d not past prior epoch %d (stale-summary hazard)", got, high)
	}
}

func TestChunkStampNoopDeleteLeavesStamps(t *testing.T) {
	v := chunkVec(ChunkSize / 2)
	before := snapshotStamps(v)
	v.deleteRows(map[int]struct{}{v.Len() + 5: {}, -1: {}}) // out of range: no-op
	after := snapshotStamps(v)
	if len(after) != len(before) || after[0] != before[0] {
		t.Fatalf("no-op delete changed stamps: %v -> %v", before, after)
	}
}
