package relational

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Row is a single tuple; its length always equals the number of columns of
// its table, in declaration order. A nil element is SQL NULL.
type Row []Value

// clone returns a copy of the row.
func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Database is an instance of a Schema: a set of rows per table.
type Database struct {
	// Schema is the schema this instance conforms to (modulo any
	// violations reported by Validate).
	Schema *Schema

	rows map[string][]Row //efes:bounded one slice per table of the loaded instance, one element per row

	// vecs holds the lazily materialized columnar view of each table
	// (see colvec.go). vecMu guards the map and first-access builds:
	// concurrent profiling readers may trigger materialization, which
	// turns a read into a write.
	vecMu sync.Mutex
	vecs  map[string][]*ColumnVector //efes:guardedby vecMu

	// hashes memoizes per-table content hashes (ContentHash). hashMu is
	// separate from vecMu so a first-time hash (a full CSV serialization
	// of the table) never blocks columnar materialization; holding it
	// across the computation deduplicates concurrent hashers of the same
	// instance. Mutations invalidate via invalidateHash.
	hashMu sync.Mutex
	hashes map[string]string //efes:guardedby hashMu
}

// NewDatabase creates an empty instance of the given schema.
func NewDatabase(s *Schema) *Database {
	return &Database{
		Schema: s,
		rows:   make(map[string][]Row),
		vecs:   make(map[string][]*ColumnVector),
		hashes: make(map[string]string),
	}
}

// ContentHash returns a hex-encoded SHA-256 over the table's full CSV
// serialization (header plus every row in order, WriteCSV's encoding).
// Two tables hash equal iff they have the same column names and the same
// tuples in the same order, whatever process or machine computed the
// hash — the content address that keys the durable profile and result
// caches (internal/persist). The hash is memoized per table and
// invalidated by Insert, Update, Delete, and ReadCSV.
func (db *Database) ContentHash(table string) (string, error) {
	db.hashMu.Lock()
	defer db.hashMu.Unlock()
	if h, ok := db.hashes[table]; ok {
		return h, nil
	}
	hasher := sha256.New()
	if err := db.WriteCSV(table, hasher); err != nil {
		return "", err
	}
	h := hex.EncodeToString(hasher.Sum(nil))
	db.hashes[table] = h
	return h, nil
}

// invalidateHash drops the memoized content hash of a mutated table.
func (db *Database) invalidateHash(table string) {
	db.hashMu.Lock()
	delete(db.hashes, table)
	db.hashMu.Unlock()
}

// Insert appends a tuple to the named table after type-checking every
// value against the column types. Values are coerced to their canonical
// representation (e.g. int -> int64).
func (db *Database) Insert(table string, values ...Value) error {
	t := db.Schema.Table(table)
	if t == nil {
		return fmt.Errorf("relational: insert into unknown table %s", table)
	}
	if len(values) != len(t.Columns) {
		return fmt.Errorf("relational: insert into %s: got %d values, want %d", table, len(values), len(t.Columns))
	}
	row := make(Row, len(values))
	for i, v := range values {
		cv, err := Coerce(t.Columns[i].Type, v)
		if err != nil {
			return fmt.Errorf("relational: insert into %s.%s: %w", table, t.Columns[i].Name, err)
		}
		row[i] = cv
	}
	db.rows[table] = append(db.rows[table], row)
	db.vecInsert(table, row)
	db.invalidateHash(table)
	return nil
}

// MustInsert is Insert but panics on error; for generators and tests.
func (db *Database) MustInsert(table string, values ...Value) {
	if err := db.Insert(table, values...); err != nil {
		panic(err)
	}
}

// InsertMap inserts a tuple given as a column-name-to-value map; missing
// columns become NULL, unknown columns are an error.
func (db *Database) InsertMap(table string, values map[string]Value) error {
	t := db.Schema.Table(table)
	if t == nil {
		return fmt.Errorf("relational: insert into unknown table %s", table)
	}
	row := make([]Value, len(t.Columns))
	// Visit the columns in sorted order so that a tuple with several
	// unknown columns always reports the same one.
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		idx := t.ColumnIndex(name)
		if idx < 0 {
			return fmt.Errorf("relational: insert into %s: unknown column %s", table, name)
		}
		row[idx] = values[name]
	}
	return db.Insert(table, row...)
}

// Rows returns the tuples of the named table. The returned slice is owned
// by the database and must not be mutated.
func (db *Database) Rows(table string) []Row { return db.rows[table] }

// NumRows returns the number of tuples in the named table.
func (db *Database) NumRows(table string) int { return len(db.rows[table]) }

// TotalRows returns the number of tuples over all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, rs := range db.rows {
		n += len(rs)
	}
	return n
}

// Column returns all values of one column, in row order (including NULLs
// and duplicates).
func (db *Database) Column(table, column string) ([]Value, error) {
	t := db.Schema.Table(table)
	if t == nil {
		return nil, fmt.Errorf("relational: unknown table %s", table)
	}
	idx := t.ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("relational: unknown column %s.%s", table, column)
	}
	out := make([]Value, 0, len(db.rows[table]))
	for _, row := range db.rows[table] {
		out = append(out, row[idx])
	}
	return out, nil
}

// MustColumn is Column but panics on error.
func (db *Database) MustColumn(table, column string) []Value {
	vs, err := db.Column(table, column)
	if err != nil {
		panic(err)
	}
	return vs
}

// DistinctValues returns the distinct non-NULL values of a column, in
// deterministic (sorted) order, and the number of NULLs.
func (db *Database) DistinctValues(table, column string) (distinct []Value, nulls int, err error) {
	vs, err := db.Column(table, column)
	if err != nil {
		return nil, 0, err
	}
	seen := make(map[string]Value)
	for _, v := range vs {
		if v == nil {
			nulls++
			continue
		}
		seen[FormatValue(v)] = v
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	distinct = make([]Value, 0, len(keys))
	for _, k := range keys {
		distinct = append(distinct, seen[k])
	}
	return distinct, nulls, nil
}

// Validate checks every declared constraint against the instance and
// returns all violations.
func (db *Database) Validate() []Violation {
	var out []Violation
	for _, c := range db.Schema.Constraints {
		out = append(out, c.Violations(db)...)
	}
	return out
}

// Clone deep-copies the instance (sharing the immutable schema).
func (db *Database) Clone() *Database {
	out := NewDatabase(db.Schema)
	for table, rs := range db.rows {
		cp := make([]Row, len(rs))
		for i, r := range rs {
			cp[i] = r.clone()
		}
		out.rows[table] = cp
	}
	return out
}

// Delete removes the rows at the given indexes from the named table.
// Indexes outside the table are ignored.
func (db *Database) Delete(table string, rowIndexes ...int) {
	if len(rowIndexes) == 0 {
		return
	}
	drop := make(map[int]struct{}, len(rowIndexes))
	for _, i := range rowIndexes {
		drop[i] = struct{}{}
	}
	src := db.rows[table]
	dst := src[:0]
	for i, r := range src {
		if _, gone := drop[i]; !gone {
			dst = append(dst, r)
		}
	}
	db.rows[table] = dst
	db.vecDelete(table, drop)
	db.invalidateHash(table)
}

// Update sets column of the row at rowIndex to v (after coercion).
func (db *Database) Update(table string, rowIndex int, column string, v Value) error {
	t := db.Schema.Table(table)
	if t == nil {
		return fmt.Errorf("relational: update unknown table %s", table)
	}
	idx := t.ColumnIndex(column)
	if idx < 0 {
		return fmt.Errorf("relational: update unknown column %s.%s", table, column)
	}
	if rowIndex < 0 || rowIndex >= len(db.rows[table]) {
		return fmt.Errorf("relational: update %s: row %d out of range", table, rowIndex)
	}
	cv, err := Coerce(t.Columns[idx].Type, v)
	if err != nil {
		return err
	}
	db.rows[table][rowIndex][idx] = cv
	db.vecUpdate(table, rowIndex, idx, cv)
	db.invalidateHash(table)
	return nil
}

// JoinPair is one matched pair of row indexes produced by EquiJoin.
type JoinPair struct {
	Left, Right int
}

// EquiJoin matches rows of two tables on equality of the given columns and
// returns the matching index pairs. NULLs never join.
func (db *Database) EquiJoin(leftTable, leftColumn, rightTable, rightColumn string) ([]JoinPair, error) {
	lt := db.Schema.Table(leftTable)
	rt := db.Schema.Table(rightTable)
	if lt == nil || rt == nil {
		return nil, fmt.Errorf("relational: join of unknown tables %s, %s", leftTable, rightTable)
	}
	li := lt.ColumnIndex(leftColumn)
	ri := rt.ColumnIndex(rightColumn)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("relational: join on unknown columns %s.%s, %s.%s", leftTable, leftColumn, rightTable, rightColumn)
	}
	index := make(map[string][]int)
	for j, row := range db.rows[rightTable] {
		v := row[ri]
		if v == nil {
			continue
		}
		k := FormatValue(v)
		index[k] = append(index[k], j)
	}
	var out []JoinPair
	for i, row := range db.rows[leftTable] {
		v := row[li]
		if v == nil {
			continue
		}
		for _, j := range index[FormatValue(v)] {
			out = append(out, JoinPair{Left: i, Right: j})
		}
	}
	return out, nil
}
