// Package relational implements an in-memory relational data store: typed
// schemas, constraints, instances, validation, and basic algebraic
// operations (projection, selection, equi-join).
//
// It is the storage substrate of the EFES reproduction. The original paper
// keeps its datasets in PostgreSQL and inspects them with "simple SQL
// queries"; this package offers the equivalent operations over the same
// relational model so that every detector in the framework can run against
// it without an external database.
package relational

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the column datatypes supported by the store.
type Type int

// Supported column datatypes.
const (
	// String is arbitrary text.
	String Type = iota
	// Integer is a 64-bit signed integer.
	Integer
	// Float is a 64-bit IEEE floating point number.
	Float
	// Bool is a boolean.
	Bool
	// Time is a point in time.
	Time
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case String:
		return "text"
	case Integer:
		return "integer"
	case Float:
		return "double"
	case Bool:
		return "boolean"
	case Time:
		return "timestamp"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType parses a type name as produced by Type.String. It also accepts
// a few common aliases (varchar, int, bigint, real, numeric, date).
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "string", "varchar", "char":
		return String, nil
	case "integer", "int", "bigint", "smallint", "serial":
		return Integer, nil
	case "double", "float", "real", "numeric", "decimal":
		return Float, nil
	case "boolean", "bool":
		return Bool, nil
	case "timestamp", "time", "date", "datetime":
		return Time, nil
	default:
		return String, fmt.Errorf("relational: unknown type %q", s)
	}
}

// Value is a single cell value. A nil Value represents SQL NULL. Non-nil
// values must be of the Go type matching the column's Type: string, int64,
// float64, bool, or time.Time.
type Value interface{}

// ValidValue reports whether v is an acceptable value for a column of
// type t. NULL (nil) is always acceptable at the value level; NOT NULL is
// enforced by constraints.
func ValidValue(t Type, v Value) bool {
	if v == nil {
		return true
	}
	switch t {
	case String:
		_, ok := v.(string)
		return ok
	case Integer:
		_, ok := v.(int64)
		return ok
	case Float:
		_, ok := v.(float64)
		return ok
	case Bool:
		_, ok := v.(bool)
		return ok
	case Time:
		_, ok := v.(time.Time)
		return ok
	default:
		return false
	}
}

// Coerce converts v into the canonical Go representation for type t.
// Integers are widened from any Go integer type, float32 is widened to
// float64, and strings are parsed when the target type is not String.
// It returns an error when the conversion is impossible.
func Coerce(t Type, v Value) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case String:
		switch x := v.(type) {
		case string:
			return x, nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case int:
			return strconv.Itoa(x), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		case bool:
			return strconv.FormatBool(x), nil
		case time.Time:
			return x.Format(time.RFC3339), nil
		}
	case Integer:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case float64:
			if x == math.Trunc(x) && !math.IsInf(x, 0) {
				return int64(x), nil
			}
		case string:
			if n, err := ParseInt(x); err == nil {
				return n, nil
			}
		}
	case Float:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		case string:
			if f, err := ParseFloat(x); err == nil {
				return f, nil
			}
		}
	case Bool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case string:
			if b, err := ParseBool(x); err == nil {
				return b, nil
			}
		}
	case Time:
		switch x := v.(type) {
		case time.Time:
			return x, nil
		case string:
			if ts, err := ParseTime(x); err == nil {
				return ts, nil
			}
		}
	}
	return nil, fmt.Errorf("relational: cannot coerce %T(%v) to %s", v, v, t)
}

// Castable reports whether v can be coerced to type t. NULLs are castable
// to every type.
func Castable(t Type, v Value) bool {
	_, err := Coerce(t, v)
	return err == nil
}

// FormatValue renders v for display and CSV output. NULL renders as the
// empty string.
func FormatValue(v Value) string {
	if v == nil {
		return ""
	}
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return FormatFloat(x)
	case bool:
		return strconv.FormatBool(x)
	case time.Time:
		return FormatTime(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// CompareValues orders two values of the same type. NULL sorts before all
// non-NULL values. It returns -1, 0, or +1.
func CompareValues(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case string:
		y, _ := b.(string)
		return strings.Compare(x, y)
	case int64:
		y, _ := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y, _ := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case bool:
		y, _ := b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	case time.Time:
		y, _ := b.(time.Time)
		switch {
		case x.Before(y):
			return -1
		case x.After(y):
			return 1
		}
		return 0
	default:
		return strings.Compare(FormatValue(a), FormatValue(b))
	}
}
