package efesd

// HTTP-layer resilience: a module failure under best-effort yields a 200
// with Failures populated (byte-stable across worker counts), an expired
// request deadline yields the baseline fallback instead of a 500, panics
// are isolated per request, and degraded results never enter the
// durable cache. Test names carry the Resilience/Fault prefixes so
// `make faults` exercises them twice.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"efes/internal/core"
	"efes/internal/faultinject"
	"efes/internal/mapping"
	"efes/internal/persist"
)

func TestResilienceModuleFailureBestEffortIs200(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+mapping.ModuleName, faultinject.Fault{Kind: faultinject.Error})

	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		_, ts := newTestServer(t, Config{Workers: workers})
		uploadMusic(t, ts.URL, nil)
		resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: best-effort module failure must stay 200, got %d: %s", workers, resp.StatusCode, data)
		}
		if resp.Header.Get("X-Efes-Degraded") != "1" {
			t.Errorf("workers=%d: degraded header missing", workers)
		}
		var export core.ResultExport
		if err := json.Unmarshal(data, &export); err != nil {
			t.Fatal(err)
		}
		if !export.Degraded || len(export.Failures) != 1 || export.Failures[0].Module != mapping.ModuleName {
			t.Errorf("workers=%d: failures = %+v", workers, export.Failures)
		}
		if export.Failures[0].FallbackMinutes <= 0 || export.TotalMinutes <= 0 {
			t.Errorf("workers=%d: fallback not substituted: %+v", workers, export.Failures[0])
		}
		bodies = append(bodies, data)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("degraded response bytes differ across worker counts")
	}
}

func TestResilienceFailFastSurfacesAs500(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+mapping.ModuleName, faultinject.Fault{Kind: faultinject.Error})

	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)
	resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, `, "bestEffort": false`), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("fail-fast status = %d: %s", resp.StatusCode, data)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error == "" {
		t.Error("fail-fast error body is empty")
	}
}

func TestResilienceDeadlineFallsBackToBaseline(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	// One slow detector blows the 100 ms request budget; the daemon owes
	// an answer anyway — the all-fallback baseline estimate, marked
	// degraded on every module, never a 500.
	faultinject.Enable("core:detector:"+mapping.ModuleName,
		faultinject.Fault{Kind: faultinject.Delay, Delay: 2 * time.Second})

	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)
	resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, `, "timeoutMs": 100`), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline expiry must degrade, not fail: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Efes-Degraded") != "1" {
		t.Error("degraded header missing on fallback response")
	}
	var export core.ResultExport
	if err := json.Unmarshal(data, &export); err != nil {
		t.Fatal(err)
	}
	if !export.Degraded || len(export.Failures) == 0 {
		t.Fatalf("export = %+v, want all-fallback degradation", export)
	}
	for _, f := range export.Failures {
		if f.Stage != "deadline" {
			t.Errorf("failure stage = %q, want deadline", f.Stage)
		}
	}
	if export.TotalMinutes <= 0 {
		t.Error("fallback estimate must still be positive")
	}
	if len(export.Reports) != 0 {
		t.Errorf("reports = %d, want none (nothing completed)", len(export.Reports))
	}
}

func TestResiliencePanicIsolatedPerRequest(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("profile:column", faultinject.Fault{Kind: faultinject.Panic, Times: 1})

	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)
	body := []byte(`{"scenario": "music-example", "db": "target", "table": "tracks", "column": "title"}`)
	resp, data := post(t, ts.URL+"/v1/profile", body, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d: %s", resp.StatusCode, data)
	}
	// The daemon survives: the next request on the same server succeeds.
	resp, data = post(t, ts.URL+"/v1/profile", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request status = %d: %s", resp.StatusCode, data)
	}
	_, status := get(t, ts.URL+"/v1/status")
	var st statusResponse
	if err := json.Unmarshal(status, &st); err != nil {
		t.Fatal(err)
	}
	if st.Panics != 1 {
		t.Errorf("panics = %d, want 1", st.Panics)
	}
}

func TestResilienceDegradedResultsAreNeverPersisted(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	cache, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	_, ts := newTestServer(t, Config{Cache: cache})
	uploadMusic(t, ts.URL, nil)

	faultinject.Enable("core:detector:"+mapping.ModuleName, faultinject.Fault{Kind: faultinject.Error, Times: 1})
	resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Efes-Degraded") != "1" {
		t.Fatalf("degraded estimate: status %d, header %q", resp.StatusCode, resp.Header.Get("X-Efes-Degraded"))
	}
	// The degraded answer did not poison the cache: the retry recomputes
	// cleanly (miss) and only then persists.
	resp, clean := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "miss" || resp.Header.Get("X-Efes-Degraded") != "" {
		t.Fatalf("retry: cache %q, degraded %q", resp.Header.Get("X-Efes-Cache"), resp.Header.Get("X-Efes-Degraded"))
	}
	resp, warm := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "hit" {
		t.Fatalf("third estimate not warm (%q)", resp.Header.Get("X-Efes-Cache"))
	}
	if !bytes.Equal(clean, warm) {
		t.Error("warm bytes differ from the clean recompute")
	}
}
