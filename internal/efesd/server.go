// Package efesd implements the estimation daemon: an HTTP/JSON service
// that serves concurrent, multi-tenant estimation requests over uploaded
// scenarios, backed by the shared in-process profiler memo and an
// optional durable persist.Cache (profile statistics and non-degraded
// results survive restarts and are served byte-identically warm).
//
// The request lifecycle is hardened end to end: admission control sheds
// load with a fast 429 when the bounded in-flight budget is exhausted
// (503 while draining), every request runs under a deadline, a
// per-request resilience policy maps onto core.Resilience (retries,
// per-module timeouts, best-effort degradation), an expired overall
// deadline degrades to the baseline fallback estimate instead of a 500,
// and panics are isolated per request by a recovery middleware.
//
// The package deliberately contains no `go` statements and reads no wall
// clock: concurrency comes from net/http's per-connection goroutines and
// the framework's worker pool, and all cache recency is logical — both
// properties are enforced by the in-tree efeslint rules (goleak,
// nonewtime).
package efesd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"efes/internal/baseline"
	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/mapping"
	"efes/internal/persist"
	"efes/internal/profile"
	"efes/internal/structure"
	"efes/internal/valuefit"
)

// DefaultMaxInFlight bounds concurrently admitted requests when
// Config.MaxInFlight is zero.
const DefaultMaxInFlight = 32

// Config configures a Server. The zero value is usable: default effort
// configuration, one detector worker, a best-effort resilience policy,
// no durable cache.
type Config struct {
	// Cache is the durable store for profile statistics and
	// non-degraded results; nil serves from memory only.
	Cache *persist.Cache
	// Workers is the detector/profiler concurrency per request.
	Workers int
	// ProfileMode is the default profiling mode (exact, the zero value,
	// or approx). Profile requests override it per request via ?mode= or
	// the X-Efes-Profile-Mode header; approximate responses are always
	// marked with their error bounds, never silently substituted.
	ProfileMode profile.Mode
	// MaxInFlight bounds concurrently admitted requests; excess
	// requests are shed with 429. 0 selects DefaultMaxInFlight.
	MaxInFlight int
	// RequestTimeout is the default overall deadline for estimate
	// requests that do not set timeoutMs; 0 means no default deadline.
	RequestTimeout time.Duration
	// Resilience is the default policy for estimate requests; request
	// fields override individual settings.
	Resilience Resilience
	// Effort is the calculator configuration; a zero Functions table
	// selects effort.DefaultConfig.
	Effort effort.Config
	// MaxScenarios bounds resident uploaded scenarios per server; an
	// upload beyond it evicts the least recently used scenario. 0
	// selects DefaultMaxScenarios; negative disables the cap.
	MaxScenarios int
	// ScenarioTTL expires scenarios idle longer than this, lazily on
	// the next lookup or listing; 0 disables. TTL accounting needs the
	// injected clock: with a nil Now it is off regardless.
	ScenarioTTL time.Duration
	// Now is the clock for scenario TTL accounting. The package itself
	// reads no wall clock (enforced by the nonewtime rule); the binary
	// injects time.Now. nil disables TTL expiry.
	Now func() time.Time
}

// Resilience is the server's default request policy in daemon terms.
type Resilience struct {
	// ModuleTimeout bounds one detector attempt.
	ModuleTimeout time.Duration
	// Retries is how often a failed detector attempt is retried.
	Retries int
	// Backoff is the wait before the first retry (doubling).
	Backoff time.Duration
	// FailFast disables best-effort degradation. The daemon defaults to
	// best-effort (the zero value): a service that owes its client an
	// answer degrades onto the baseline instead of failing the request.
	FailFast bool
}

// scenarioEntry is one uploaded scenario with its content address and
// recency bookkeeping (see evict.go).
type scenarioEntry struct {
	scn  *core.Scenario
	hash string // persist.ScenarioHash at upload time

	// seq is the logical recency (larger = more recently used); it
	// orders LRU eviction without consulting a clock.
	seq int64 //efes:guardedby mu — Server.mu
	// lastUsed is the injected-clock time of the last touch; zero when
	// the server has no clock (TTL then never expires anything).
	lastUsed time.Time //efes:guardedby mu — Server.mu
}

// Server is the estimation daemon. It implements http.Handler; all
// state is safe for concurrent use.
//
//efes:daemon-lifetime
type Server struct {
	cfg   Config
	fw    *core.Framework
	prof  *profile.Profiler
	cache *persist.Cache
	// cfgPrint is the effort-config fingerprint baked into result keys.
	cfgPrint string
	mux      *http.ServeMux
	sem      chan struct{}
	draining atomic.Bool

	mu        sync.Mutex
	scenarios map[string]*scenarioEntry //efes:guardedby mu — tenant + "\x00" + name; LRU/TTL-bounded, see evict.go
	scnSeq    int64                     //efes:guardedby mu — logical recency counter

	// Request-lifecycle counters (see /v1/status).
	inflight     atomic.Int64
	admitted     atomic.Int64
	shed         atomic.Int64
	panics       atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	degraded     atomic.Int64
	fallbacks    atomic.Int64
	evictedLRU   atomic.Int64
	evictedTTL   atomic.Int64
	// Profile-request mode counters: how many /v1/profile requests ran
	// the exact vs. the approximate (sketch-based) kernels.
	profileExact  atomic.Int64
	profileApprox atomic.Int64
}

// New assembles a Server: one shared framework (standard modules, the
// attribute-counting baseline as fallback) over one shared profiler,
// wired to the durable cache when one is configured.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if len(cfg.Effort.Functions) == 0 {
		cfg.Effort = effort.DefaultConfig()
	}
	fp, err := persist.ConfigFingerprint(cfg.Effort)
	if err != nil {
		return nil, fmt.Errorf("efesd: fingerprint effort config: %w", err)
	}
	prof := profile.NewProfiler(cfg.Workers).SetMode(cfg.ProfileMode)
	if cfg.Cache != nil {
		prof.SetStore(cfg.Cache.Namespace("stats"))
	}
	vf := valuefit.New()
	vf.Profiler = prof
	fw := core.New(cfg.Effort.Calculator(), mapping.New(), structure.New(), vf).
		SetWorkers(cfg.Workers).
		SetResilience(cfg.Resilience.policy()).
		SetFallback(baseline.New())
	s := &Server{
		cfg:       cfg,
		fw:        fw,
		prof:      prof,
		cache:     cfg.Cache,
		cfgPrint:  fp,
		sem:       make(chan struct{}, cfg.MaxInFlight),
		scenarios: make(map[string]*scenarioEntry),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/scenarios", s.handleUpload)
	mux.HandleFunc("GET /v1/scenarios", s.handleListScenarios)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/profile", s.handleProfile)
	mux.HandleFunc("POST /v1/match", s.handleMatch)
	s.mux = mux
	return s, nil
}

// policy maps the daemon's default-best-effort knobs onto the
// framework's default-fail-fast Resilience.
func (r Resilience) policy() core.Resilience {
	return core.Resilience{
		ModuleTimeout: r.ModuleTimeout,
		Retries:       r.Retries,
		Backoff:       r.Backoff,
		BestEffort:    !r.FailFast,
	}
}

// StartDrain puts the server into draining mode: new requests are
// refused with 503 while in-flight requests finish. Call it before
// http.Server.Shutdown so load balancers stop routing to the instance.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Profiler returns the shared profiler (tests inspect its counters).
func (s *Server) Profiler() *profile.Profiler { return s.prof }

// ServeHTTP is the hardened request entry: drain refusal, admission
// control, in-flight accounting, and per-request panic isolation wrap
// the route mux. Health and status probes bypass admission so that the
// instance stays observable under full load and during drain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" || r.URL.Path == "/v1/status" {
		s.protect(w, r)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed.Add(1)
		writeError(w, http.StatusTooManyRequests, "too many in-flight requests")
		return
	}
	defer func() { <-s.sem }()
	s.admitted.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.protect(w, r)
}

// protect runs the mux under per-request panic isolation: a panicking
// handler produces a 500 for its own request and nothing else — the
// connection goroutine survives and the next request is served normally.
func (s *Server) protect(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			// If the handler already wrote a response this write fails
			// silently; the request was doomed either way.
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", v))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// tenant scopes scenario names: uploads and lookups with the same
// X-Efes-Tenant header see each other, others do not. The durable caches
// are content-addressed and therefore deliberately shared across tenants
// — identical data yields identical profiles and results.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Efes-Tenant"); t != "" {
		return t
	}
	return "default"
}

// lookup resolves a scenario name within the request's tenant. A hit
// touches the entry's recency; a TTL-expired entry is evicted on the
// spot and reported as a miss (the client re-uploads).
func (s *Server) lookup(r *http.Request, name string) (*scenarioEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := tenant(r) + "\x00" + name
	e, ok := s.scenarios[key]
	if !ok {
		return nil, false
	}
	if s.expiredLocked(e) {
		delete(s.scenarios, key)
		s.evictedTTL.Add(1)
		return nil, false
	}
	s.touchLocked(e)
	return e, true
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("encode response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError writes a JSON error body ({"error": ...}).
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(data, '\n'))
}
