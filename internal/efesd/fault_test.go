package efesd

// The persist:* fault points exercised through the daemon's HTTP
// surface: every injected durable-cache failure must degrade to
// recompute-and-serve with byte-identical answers — a broken disk slows
// the daemon down, it never changes or fails a response.

import (
	"bytes"
	"net/http"
	"testing"

	"efes/internal/faultinject"
	"efes/internal/persist"
)

// cacheServer builds a server over a fresh durable cache.
func cacheServer(t *testing.T) (*Server, string) {
	t.Helper()
	cache, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cache.Close() })
	s, ts := newTestServer(t, Config{Cache: cache})
	uploadMusic(t, ts.URL, nil)
	return s, ts.URL
}

func TestFaultPersistReadDegradesToRecompute(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	_, url := cacheServer(t)

	resp, cold := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold estimate status = %d", resp.StatusCode)
	}
	if resp, _ := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil); resp.Header.Get("X-Efes-Cache") != "hit" {
		t.Fatalf("warm estimate not a hit (%q)", resp.Header.Get("X-Efes-Cache"))
	}

	// A failing read degrades the hit to a recompute with identical bytes.
	faultinject.Enable("persist:read", faultinject.Fault{Kind: faultinject.Error, Times: 1})
	resp, recomputed := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Fatalf("degraded read: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Efes-Cache"))
	}
	if !bytes.Equal(cold, recomputed) {
		t.Error("recomputed bytes differ from the cold answer")
	}
}

func TestFaultPersistWriteServesWithoutPersisting(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	s, url := cacheServer(t)

	// Every write fails: the estimate is still computed and served, the
	// cache just stays empty.
	faultinject.Enable("persist:write", faultinject.Fault{Kind: faultinject.Error})
	resp, cold := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate under write faults: status %d", resp.StatusCode)
	}
	if st := s.cache.Stats(); st.Entries != 0 || st.WriteErrors == 0 {
		t.Errorf("cache = %d entries, %d write errors; want 0 entries, some errors", st.Entries, st.WriteErrors)
	}
	faultinject.Reset()

	// With the disk healed, the next request recomputes, persists, and
	// the one after serves warm and byte-identical.
	resp, clean := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Fatalf("healed estimate not a miss (%q)", resp.Header.Get("X-Efes-Cache"))
	}
	if !bytes.Equal(cold, clean) {
		t.Error("bytes differ before and after the write faults")
	}
	resp, warm := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "hit" || !bytes.Equal(clean, warm) {
		t.Errorf("warm serve after heal: cache %q, identical %v", resp.Header.Get("X-Efes-Cache"), bytes.Equal(clean, warm))
	}
}

func TestFaultPersistCorruptEntriesAreQuarantinedAndRepaired(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	s, url := cacheServer(t)

	// Every entry written during the cold run lands corrupted on disk.
	faultinject.Enable("persist:corrupt", faultinject.Fault{Kind: faultinject.Error})
	resp, cold := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate under corruption: status %d", resp.StatusCode)
	}
	faultinject.Reset()

	// The corrupted result entry fails verification, is quarantined, and
	// the request degrades to a clean recompute with identical bytes.
	resp, repaired := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Fatalf("corrupt read: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Efes-Cache"))
	}
	if !bytes.Equal(cold, repaired) {
		t.Error("repaired bytes differ from the cold answer")
	}
	if st := s.cache.Stats(); st.Quarantined == 0 {
		t.Error("no entries quarantined despite injected corruption")
	}
	// The repair persisted a clean entry: the next request is warm.
	resp, warm := post(t, url+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "hit" || !bytes.Equal(cold, warm) {
		t.Errorf("post-repair serve: cache %q, identical %v", resp.Header.Get("X-Efes-Cache"), bytes.Equal(cold, warm))
	}
}
