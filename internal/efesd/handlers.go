package efesd

// The daemon's endpoint handlers. Every handler is synchronous (no `go`
// statements — concurrency belongs to net/http and the framework's
// worker pool) and threads the request context into every
// cancellation-aware callee.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/match"
	"efes/internal/persist"
	"efes/internal/profile"
	"efes/internal/relational"
)

// dbSpec is an uploaded database: a schema declaration in the
// relational.ParseSchemaText format plus per-table CSV bodies in the
// relational.ReadCSV format.
type dbSpec struct {
	Schema string            `json:"schema"`
	Tables map[string]string `json:"tables"`
}

// sourceSpec is one uploaded source.
type sourceSpec struct {
	Name string `json:"name"`
	dbSpec
	// Correspondences is the line-oriented match.ParseText format.
	Correspondences string `json:"correspondences,omitempty"`
	// Discover runs the schema matcher instead of (or in addition to)
	// explicit correspondences.
	Discover bool `json:"discover,omitempty"`
}

// uploadRequest is the POST /v1/scenarios body.
type uploadRequest struct {
	Name    string       `json:"name"`
	Target  dbSpec       `json:"target"`
	Sources []sourceSpec `json:"sources"`
}

// uploadResponse echoes the registered scenario.
type uploadResponse struct {
	Name string `json:"name"`
	// Hash is the scenario's content address: the same data uploaded to
	// any efes process derives the same hash, which is what lets the
	// durable result cache serve warm answers across restarts.
	Hash    string `json:"hash"`
	Sources int    `json:"sources"`
	// Correspondences counts all correspondences over all sources.
	Correspondences int `json:"correspondences"`
}

// loadDB materializes an uploaded database. Tables load in sorted name
// order — the map iteration order must not leak anywhere.
func loadDB(spec dbSpec) (*relational.Database, error) {
	schema, err := relational.ParseSchemaText(spec.Schema)
	if err != nil {
		return nil, err
	}
	db := relational.NewDatabase(schema)
	names := make([]string, 0, len(spec.Tables))
	for name := range spec.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := db.ReadCSV(name, strings.NewReader(spec.Tables[name])); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req uploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "scenario name is required")
		return
	}
	target, err := loadDB(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("target: %v", err))
		return
	}
	scn := &core.Scenario{Name: req.Name, Target: target}
	corrCount := 0
	for _, src := range req.Sources {
		db, err := loadDB(src.dbSpec)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("source %s: %v", src.Name, err))
			return
		}
		corrs := &match.Set{}
		if src.Correspondences != "" {
			corrs, err = match.ParseText(strings.NewReader(src.Correspondences))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("source %s: %v", src.Name, err))
				return
			}
		}
		if src.Discover {
			for _, c := range match.NewMatcher().Match(db, target).All {
				corrs.All = append(corrs.All, c)
			}
		}
		scn.Sources = append(scn.Sources, &core.Source{Name: src.Name, DB: db, Correspondences: corrs})
		corrCount += len(corrs.All)
	}
	if err := scn.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash, err := persist.ScenarioHash(scn)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("hash scenario: %v", err))
		return
	}
	s.register(tenant(r)+"\x00"+req.Name, &scenarioEntry{scn: scn, hash: hash})
	writeJSON(w, http.StatusCreated, uploadResponse{
		Name: req.Name, Hash: hash, Sources: len(scn.Sources), Correspondences: corrCount,
	})
}

// scenarioInfo is one row of GET /v1/scenarios.
type scenarioInfo struct {
	Name    string `json:"name"`
	Hash    string `json:"hash"`
	Sources int    `json:"sources"`
}

func (s *Server) handleListScenarios(w http.ResponseWriter, r *http.Request) {
	prefix := tenant(r) + "\x00"
	s.mu.Lock()
	s.sweepExpiredLocked()
	infos := make([]scenarioInfo, 0, len(s.scenarios))
	for key, e := range s.scenarios {
		if name, ok := strings.CutPrefix(key, prefix); ok {
			infos = append(infos, scenarioInfo{Name: name, Hash: e.hash, Sources: len(e.scn.Sources)})
		}
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": infos})
}

// estimateRequest is the POST /v1/estimate body. Unset policy fields
// inherit the server's defaults.
type estimateRequest struct {
	Scenario string `json:"scenario"`
	// Quality is "low" (low effort) or "high" (high quality, default).
	Quality string `json:"quality,omitempty"`
	// TimeoutMs bounds the whole request; 0 inherits the server default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// ModuleTimeoutMs bounds one detector attempt.
	ModuleTimeoutMs int `json:"moduleTimeoutMs,omitempty"`
	// Retries overrides the per-module retry budget.
	Retries *int `json:"retries,omitempty"`
	// BackoffMs is the wait before the first retry.
	BackoffMs int `json:"backoffMs,omitempty"`
	// BestEffort overrides the degradation mode.
	BestEffort *bool `json:"bestEffort,omitempty"`
	// NoCache bypasses the durable result cache for this request (it
	// still profiles through the durable stats store).
	NoCache bool `json:"noCache,omitempty"`
}

// parseQuality maps the wire quality to effort.Quality.
func parseQuality(q string) (effort.Quality, error) {
	switch q {
	case "", "high":
		return effort.HighQuality, nil
	case "low":
		return effort.LowEffort, nil
	default:
		return 0, fmt.Errorf("unknown quality %q (want \"low\" or \"high\")", q)
	}
}

// requestPolicy derives the per-request resilience policy from the
// server defaults and the request overrides.
func (s *Server) requestPolicy(req estimateRequest) core.Resilience {
	pol := s.cfg.Resilience.policy()
	if req.ModuleTimeoutMs > 0 {
		pol.ModuleTimeout = time.Duration(req.ModuleTimeoutMs) * time.Millisecond
	}
	if req.Retries != nil {
		pol.Retries = *req.Retries
	}
	if req.BackoffMs > 0 {
		pol.Backoff = time.Duration(req.BackoffMs) * time.Millisecond
	}
	if req.BestEffort != nil {
		pol.BestEffort = *req.BestEffort
	}
	return pol
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	q, err := parseQuality(req.Quality)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	entry, ok := s.lookup(r, req.Scenario)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown scenario %q", req.Scenario))
		return
	}
	// The key carries the profiler's mode fingerprint: an approx-mode
	// daemon and an exact-mode consumer of the same cache directory can
	// never serve each other's entries.
	key := persist.ResultKey(entry.hash, q, s.cfgPrint, s.prof.Mode())
	if s.cache != nil && !req.NoCache {
		if data, ok := s.cache.Get("results", key); ok {
			s.resultHits.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Efes-Cache", "hit")
			w.Write(data)
			return
		}
	}
	s.resultMisses.Add(1)

	pol := s.requestPolicy(req)
	ctx := r.Context()
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := s.fw.WithResilience(pol).EstimateContext(ctx, entry.scn, q)
	if err != nil {
		// The request deadline expired but the client is still there: a
		// best-effort service still owes an answer — the all-fallback
		// baseline estimate, clearly marked degraded, never a 500.
		if errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil && pol.BestEffort {
			res, ferr := s.fw.FallbackResult(entry.scn, q, context.DeadlineExceeded)
			if ferr != nil {
				writeError(w, http.StatusInternalServerError, ferr.Error())
				return
			}
			s.fallbacks.Add(1)
			s.degraded.Add(1)
			s.writeResult(w, res, key, true)
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if res.Degraded() {
		s.degraded.Add(1)
	}
	s.writeResult(w, res, key, !req.NoCache)
}

// writeResult serves a freshly computed Result and — when it is clean
// and a durable cache is configured — persists its exact bytes, so a
// later warm hit is byte-identical to this response. Degraded results
// are never persisted: they reflect a transient failure, not the data.
// Every estimate response flows through here (including the best-effort
// fallback path), so the approximate-mode marker below ends up in every
// served — and every cached — body.
func (s *Server) writeResult(w http.ResponseWriter, res *core.Result, key string, cacheable bool) {
	if mode := s.prof.Mode(); mode == profile.ModeApprox {
		res.ProfileMode = mode.String()
	}
	data, err := res.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("encode result: %v", err))
		return
	}
	data = append(data, '\n')
	if s.cache != nil && cacheable && !res.Degraded() {
		s.cache.Put("results", key, data)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Efes-Cache", "miss")
	if res.Degraded() {
		w.Header().Set("X-Efes-Degraded", "1")
	}
	w.Write(data)
}

// profileRequest is the POST /v1/profile body.
type profileRequest struct {
	Scenario string `json:"scenario"`
	// DB selects the database: "target" or a source name.
	DB     string `json:"db"`
	Table  string `json:"table"`
	Column string `json:"column"`
	// Mode overrides the server's profiling mode for this request:
	// "exact" or "approx". The ?mode= query parameter and the
	// X-Efes-Profile-Mode header are equivalent spellings; the body
	// field wins when several are set.
	Mode string `json:"mode,omitempty"`
}

// requestProfileMode resolves the profiling mode of one profile request:
// body field, then ?mode= query parameter, then X-Efes-Profile-Mode
// header, then the server default. An unknown spelling is a 400, never a
// silent fallback to a different precision than the client asked for.
func (s *Server) requestProfileMode(r *http.Request, body string) (profile.Mode, error) {
	spelling := body
	if spelling == "" {
		spelling = r.URL.Query().Get("mode")
	}
	if spelling == "" {
		spelling = r.Header.Get("X-Efes-Profile-Mode")
	}
	if spelling == "" {
		return s.prof.Mode(), nil
	}
	return profile.ParseMode(spelling)
}

// resolveDB finds the requested database within a scenario.
func resolveDB(e *scenarioEntry, name string) (*relational.Database, bool) {
	if name == "" || name == "target" {
		return e.scn.Target, true
	}
	for _, src := range e.scn.Sources {
		if src.Name == name {
			return src.DB, true
		}
	}
	return nil, false
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req profileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	entry, ok := s.lookup(r, req.Scenario)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown scenario %q", req.Scenario))
		return
	}
	db, ok := resolveDB(entry, req.DB)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown database %q", req.DB))
		return
	}
	mode, err := s.requestProfileMode(r, req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	stats, err := s.prof.ColumnContextMode(r.Context(), db, req.Table, req.Column, mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if mode == profile.ModeApprox {
		s.profileApprox.Add(1)
	} else {
		s.profileExact.Add(1)
	}
	// Echo the served mode so clients can assert they got the precision
	// they asked for; approximate bodies additionally carry the Approx
	// error-bound marker.
	w.Header().Set("X-Efes-Profile-Mode", mode.String())
	writeJSON(w, http.StatusOK, stats)
}

// matchRequest is the POST /v1/match body.
type matchRequest struct {
	Scenario string `json:"scenario"`
	// Source selects the source database to match against the target.
	Source string `json:"source"`
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req matchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	entry, ok := s.lookup(r, req.Scenario)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown scenario %q", req.Scenario))
		return
	}
	db, ok := resolveDB(entry, req.Source)
	if !ok || req.Source == "" || req.Source == "target" {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown source %q", req.Source))
		return
	}
	set := match.NewMatcher().Match(db, entry.scn.Target)
	var buf bytes.Buffer
	if err := set.WriteText(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(set.All),
		"text":  buf.String(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statusResponse is the GET /v1/status body: one self-describing
// snapshot of the daemon's request, profiler, and cache counters.
type statusResponse struct {
	Draining  bool  `json:"draining"`
	Scenarios int   `json:"scenarios"`
	InFlight  int64 `json:"inflight"`
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Panics    int64 `json:"panics"`

	ResultHits   int64 `json:"resultHits"`
	ResultMisses int64 `json:"resultMisses"`
	Degraded     int64 `json:"degraded"`
	Fallbacks    int64 `json:"fallbacks"`

	// Scenario-store eviction counters (see evict.go): scenarios
	// dropped by the LRU cap and by idle-TTL expiry.
	ScenariosEvictedLRU int64 `json:"scenariosEvictedLRU"`
	ScenariosEvictedTTL int64 `json:"scenariosEvictedTTL"`

	ProfileHits     int64 `json:"profileHits"`
	ProfileMisses   int64 `json:"profileMisses"`
	ProfileDiskHits int64 `json:"profileDiskHits"`
	ProfileComputes int64 `json:"profileComputes"`
	// Per-mode /v1/profile request counters.
	ProfileExact  int64 `json:"profileExact"`
	ProfileApprox int64 `json:"profileApprox"`

	Cache *persist.Stats `json:"cache,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	s.sweepExpiredLocked()
	scenarios := len(s.scenarios)
	s.mu.Unlock()
	hits, misses := s.prof.Counters()
	diskHits, computes := s.prof.DiskCounters()
	resp := statusResponse{
		Draining:            s.draining.Load(),
		Scenarios:           scenarios,
		InFlight:            s.inflight.Load(),
		Admitted:            s.admitted.Load(),
		Shed:                s.shed.Load(),
		Panics:              s.panics.Load(),
		ResultHits:          s.resultHits.Load(),
		ResultMisses:        s.resultMisses.Load(),
		Degraded:            s.degraded.Load(),
		Fallbacks:           s.fallbacks.Load(),
		ScenariosEvictedLRU: s.evictedLRU.Load(),
		ScenariosEvictedTTL: s.evictedTTL.Load(),
		ProfileHits:         hits,
		ProfileMisses:       misses,
		ProfileDiskHits:     diskHits,
		ProfileComputes:     computes,
		ProfileExact:        s.profileExact.Load(),
		ProfileApprox:       s.profileApprox.Load(),
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	writeJSON(w, http.StatusOK, resp)
}
