package efesd

// Scenario-store eviction tests: idle-TTL expiry under an injected fake
// clock, LRU eviction at the MaxScenarios cap, the /v1/status eviction
// counters, warm re-upload through the durable cache, and a race-detector
// workout of concurrent uploads, estimates, and evictions.

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"efes/internal/persist"
)

// fakeClock is a mutable injected clock, safe for concurrent use.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// status fetches and decodes GET /v1/status.
func status(t *testing.T, baseURL string) statusResponse {
	t.Helper()
	resp, data := get(t, baseURL+"/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestScenarioTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	cache, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	_, ts := newTestServer(t, Config{
		Cache:       cache,
		ScenarioTTL: time.Minute,
		Now:         clock.Now,
	})
	uploadMusic(t, ts.URL, nil)

	// Fresh upload estimates normally and repeated use keeps it alive:
	// each touch restarts the idle clock.
	for i := 0; i < 3; i++ {
		clock.Advance(45 * time.Second)
		if resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %d status = %d: %s", i, resp.StatusCode, data)
		}
	}

	// Past the idle TTL the scenario is gone: the lookup evicts it and
	// the request is a 404, counted as a TTL eviction.
	clock.Advance(2 * time.Minute)
	if resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-TTL estimate status = %d, want 404", resp.StatusCode)
	}
	st := status(t, ts.URL)
	if st.ScenariosEvictedTTL != 1 || st.ScenariosEvictedLRU != 0 {
		t.Errorf("evictions = %d TTL / %d LRU, want 1 / 0", st.ScenariosEvictedTTL, st.ScenariosEvictedLRU)
	}
	if st.Scenarios != 0 {
		t.Errorf("resident scenarios = %d, want 0", st.Scenarios)
	}

	// Re-upload recovers cleanly, and the durable caches are content
	// addressed: the re-uploaded scenario's result is still warm.
	uploadMusic(t, ts.URL, nil)
	resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload estimate status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Efes-Cache") != "hit" {
		t.Errorf("re-upload estimate cache = %q, want hit (content-addressed result survived eviction)", resp.Header.Get("X-Efes-Cache"))
	}
}

func TestScenarioLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxScenarios: 2})
	hdr := func(tenant string) map[string]string {
		return map[string]string{"X-Efes-Tenant": tenant}
	}
	estimate := func(tenant string) int {
		resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), hdr(tenant))
		return resp.StatusCode
	}

	uploadMusic(t, ts.URL, hdr("a"))
	uploadMusic(t, ts.URL, hdr("b"))
	// Touch a so that b is the least recently used entry.
	if code := estimate("a"); code != http.StatusOK {
		t.Fatalf("tenant a estimate = %d", code)
	}
	// The third upload exceeds the cap and evicts b, not a.
	uploadMusic(t, ts.URL, hdr("c"))

	if code := estimate("b"); code != http.StatusNotFound {
		t.Errorf("evicted tenant b estimate = %d, want 404", code)
	}
	if code := estimate("a"); code != http.StatusOK {
		t.Errorf("tenant a estimate after eviction = %d, want 200", code)
	}
	if code := estimate("c"); code != http.StatusOK {
		t.Errorf("tenant c estimate = %d, want 200", code)
	}
	st := status(t, ts.URL)
	if st.ScenariosEvictedLRU != 1 || st.ScenariosEvictedTTL != 0 {
		t.Errorf("evictions = %d LRU / %d TTL, want 1 / 0", st.ScenariosEvictedLRU, st.ScenariosEvictedTTL)
	}
	if st.Scenarios != 2 {
		t.Errorf("resident scenarios = %d, want 2", st.Scenarios)
	}
}

func TestScenarioUnboundedWhenNegative(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxScenarios: -1})
	for _, tenant := range []string{"a", "b", "c", "d", "e"} {
		uploadMusic(t, ts.URL, map[string]string{"X-Efes-Tenant": tenant})
	}
	st := status(t, ts.URL)
	if st.Scenarios != 5 || st.ScenariosEvictedLRU != 0 {
		t.Errorf("scenarios = %d (evictedLRU %d), want 5 resident, 0 evicted", st.Scenarios, st.ScenariosEvictedLRU)
	}
}

// TestConcurrentUploadEvict drives uploads, estimates, listings, and
// clock advances from many goroutines against a tightly capped store.
// Its assertions are loose — the point is a race-detector-clean workout
// of the eviction paths plus counter/size accounting at quiescence.
func TestConcurrentUploadEvict(t *testing.T) {
	clock := newFakeClock()
	_, ts := newTestServer(t, Config{
		MaxScenarios: 3,
		ScenarioTTL:  time.Minute,
		Now:          clock.Now,
	})

	tenants := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			hdr := map[string]string{"X-Efes-Tenant": tenant}
			for i := 0; i < 4; i++ {
				uploadMusic(t, ts.URL, hdr)
				clock.Advance(time.Second)
				// The scenario may already be evicted by a neighbour's
				// upload: 404 is as valid as 200 here.
				resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), hdr)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					t.Errorf("tenant %s estimate = %d", tenant, resp.StatusCode)
				}
				get(t, ts.URL+"/v1/scenarios")
			}
		}(tenant)
	}
	wg.Wait()

	clock.Advance(2 * time.Minute)
	st := status(t, ts.URL)
	if st.Scenarios != 0 {
		t.Errorf("resident scenarios after TTL sweep = %d, want 0", st.Scenarios)
	}
	if st.ScenariosEvictedLRU == 0 {
		t.Error("no LRU evictions despite 24 uploads into a cap of 3")
	}
}
