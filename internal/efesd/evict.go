package efesd

// Scenario-store lifetime management. Uploaded scenarios hold whole
// parsed databases, so an unattended daemon accepting uploads forever
// would grow without bound — exactly the class of defect the growbound
// lint rule flags. The store is bounded two ways:
//
//   - an LRU cap (Config.MaxScenarios): an upload beyond the cap evicts
//     the least recently used scenario, ordered by a logical recency
//     counter so eviction needs no clock;
//   - an idle TTL (Config.ScenarioTTL + Config.Now): entries idle longer
//     than the TTL are expired lazily by the next lookup or listing.
//
// Evicted scenarios simply disappear from the store — a later request
// naming one gets 404 and re-uploads; the durable caches are content
// addressed, so the re-upload's profiles and results are still warm.

// DefaultMaxScenarios bounds resident scenarios when Config.MaxScenarios
// is zero.
const DefaultMaxScenarios = 128

// maxScenarios resolves the configured cap; <= 0 means unbounded.
func (s *Server) maxScenarios() int {
	switch {
	case s.cfg.MaxScenarios > 0:
		return s.cfg.MaxScenarios
	case s.cfg.MaxScenarios < 0:
		return 0
	default:
		return DefaultMaxScenarios
	}
}

// touchLocked bumps an entry's logical recency and, when the server has
// a clock, its idle-TTL deadline. Caller holds s.mu.
func (s *Server) touchLocked(e *scenarioEntry) {
	s.scnSeq++
	e.seq = s.scnSeq
	if s.cfg.Now != nil {
		e.lastUsed = s.cfg.Now()
	}
}

// expiredLocked reports whether an entry has sat idle past the TTL.
// Caller holds s.mu.
func (s *Server) expiredLocked(e *scenarioEntry) bool {
	return s.cfg.ScenarioTTL > 0 && s.cfg.Now != nil &&
		s.cfg.Now().Sub(e.lastUsed) > s.cfg.ScenarioTTL
}

// sweepExpiredLocked evicts every TTL-expired entry. Caller holds s.mu.
func (s *Server) sweepExpiredLocked() {
	for key, e := range s.scenarios {
		if s.expiredLocked(e) {
			delete(s.scenarios, key)
			s.evictedTTL.Add(1)
		}
	}
}

// register stores an uploaded scenario (replacing any previous upload
// under the same key) and enforces the LRU cap: expired entries go
// first, then least recently used ones until the store fits.
func (s *Server) register(key string, e *scenarioEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked(e)
	s.scenarios[key] = e
	max := s.maxScenarios()
	if max <= 0 || len(s.scenarios) <= max {
		return
	}
	s.sweepExpiredLocked()
	for len(s.scenarios) > max {
		var victim string
		var vseq int64
		for k, v := range s.scenarios {
			if victim == "" || v.seq < vseq {
				victim, vseq = k, v.seq
			}
		}
		delete(s.scenarios, victim)
		s.evictedLRU.Add(1)
	}
}
