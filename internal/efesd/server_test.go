package efesd

// White-box HTTP tests for the daemon: upload/estimate round trips,
// determinism across worker counts, admission control, drain, tenant
// isolation, panic isolation, and the in-process warm-restart story
// (the cross-process SIGKILL variant lives in cmd/efesd).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"efes/internal/core"
	"efes/internal/persist"
	"efes/internal/profile"
	"efes/internal/scenario"
)

// musicName is the scenario.MusicExample fixture's name.
const musicName = "music-example"

// renderUpload converts an in-memory scenario into the daemon's upload
// JSON (schema text, CSV table bodies, correspondence text).
func renderUpload(t *testing.T, scn *core.Scenario) []byte {
	t.Helper()
	renderDB := func(db interface {
		WriteCSV(string, io.Writer) error
	}, schema string, tables []string) dbSpec {
		spec := dbSpec{Schema: schema, Tables: make(map[string]string, len(tables))}
		for _, name := range tables {
			var buf bytes.Buffer
			if err := db.WriteCSV(name, &buf); err != nil {
				t.Fatal(err)
			}
			spec.Tables[name] = buf.String()
		}
		return spec
	}
	req := uploadRequest{Name: scn.Name}
	var names []string
	for _, tb := range scn.Target.Schema.Tables() {
		names = append(names, tb.Name)
	}
	req.Target = renderDB(scn.Target, scn.Target.Schema.String(), names)
	for _, src := range scn.Sources {
		names = names[:0]
		for _, tb := range src.DB.Schema.Tables() {
			names = append(names, tb.Name)
		}
		var corr bytes.Buffer
		if err := src.Correspondences.WriteText(&corr); err != nil {
			t.Fatal(err)
		}
		req.Sources = append(req.Sources, sourceSpec{
			Name:            src.Name,
			dbSpec:          renderDB(src.DB, src.DB.Schema.String(), names),
			Correspondences: corr.String(),
		})
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the response with its bytes read.
func post(t *testing.T, url string, body []byte, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// uploadMusic uploads the music example and returns its content hash.
func uploadMusic(t *testing.T, baseURL string, header map[string]string) string {
	t.Helper()
	body := renderUpload(t, scenario.MusicExample(scenario.SmallExampleConfig()))
	resp, data := post(t, baseURL+"/v1/scenarios", body, header)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d: %s", resp.StatusCode, data)
	}
	var ur uploadResponse
	if err := json.Unmarshal(data, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Hash == "" || ur.Sources == 0 {
		t.Fatalf("upload response = %+v", ur)
	}
	return ur.Hash
}

func estimateBody(scenarioName string, extra string) []byte {
	b := fmt.Sprintf(`{"scenario": %q%s}`, scenarioName, extra)
	return []byte(b)
}

func TestUploadEstimateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)

	resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status = %d: %s", resp.StatusCode, data)
	}
	var export core.ResultExport
	if err := json.Unmarshal(data, &export); err != nil {
		t.Fatal(err)
	}
	if export.Scenario != musicName || export.TotalMinutes <= 0 || export.Degraded {
		t.Errorf("export = scenario %q, total %v, degraded %v", export.Scenario, export.TotalMinutes, export.Degraded)
	}
	if resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Errorf("cache header = %q, want miss", resp.Header.Get("X-Efes-Cache"))
	}

	// Low quality is a distinct estimate.
	respLow, dataLow := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, `, "quality": "low"`), nil)
	if respLow.StatusCode != http.StatusOK {
		t.Fatalf("low estimate status = %d: %s", respLow.StatusCode, dataLow)
	}
	if bytes.Equal(data, dataLow) {
		t.Error("low and high quality estimates are identical")
	}

	// Unknown scenario and bad quality are client errors.
	if resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody("nope", ""), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown scenario status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, `, "quality": "best"`), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad quality status = %d, want 400", resp.StatusCode)
	}
}

func TestEstimateByteStableAcrossWorkerCounts(t *testing.T) {
	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		_, ts := newTestServer(t, Config{Workers: workers})
		uploadMusic(t, ts.URL, nil)
		resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d status = %d: %s", workers, resp.StatusCode, data)
		}
		bodies = append(bodies, data)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("estimate bytes differ across worker counts")
	}
}

func TestScenarioListAndTenantIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)
	uploadMusic(t, ts.URL, map[string]string{"X-Efes-Tenant": "acme"})

	resp, data := get(t, ts.URL+"/v1/scenarios")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var listing struct {
		Scenarios []scenarioInfo `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Scenarios) != 1 || listing.Scenarios[0].Name != musicName {
		t.Errorf("default tenant listing = %+v", listing.Scenarios)
	}

	// The acme tenant's upload is invisible to the default tenant and
	// vice versa; estimating across tenants is a 404.
	resp, _ = post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), map[string]string{"X-Efes-Tenant": "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-tenant estimate status = %d, want 404", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), map[string]string{"X-Efes-Tenant": "acme"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("acme tenant estimate status = %d, want 200", resp.StatusCode)
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)

	resp, data := post(t, ts.URL+"/v1/profile",
		[]byte(`{"scenario": "music-example", "db": "target", "table": "tracks", "column": "title"}`), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status = %d: %s", resp.StatusCode, data)
	}
	var stats struct {
		Table  string `json:"Table"`
		Column string `json:"Column"`
		Rows   int    `json:"Rows"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Table != "tracks" || stats.Column != "title" || stats.Rows == 0 {
		t.Errorf("stats = %+v: %s", stats, data)
	}

	if resp, _ := post(t, ts.URL+"/v1/profile",
		[]byte(`{"scenario": "music-example", "db": "nope", "table": "tracks", "column": "title"}`), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown db status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/profile",
		[]byte(`{"scenario": "music-example", "db": "target", "table": "tracks", "column": "nope"}`), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown column status = %d, want 400", resp.StatusCode)
	}
}

func TestProfileModeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)
	body := []byte(`{"scenario": "music-example", "db": "target", "table": "tracks", "column": "title"}`)

	// Default is exact: the mode is echoed and the body carries no
	// Approx marker.
	resp, data := post(t, ts.URL+"/v1/profile", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status = %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Efes-Profile-Mode"); got != "exact" {
		t.Errorf("default mode header = %q, want exact", got)
	}
	if strings.Contains(string(data), "Approx") {
		t.Errorf("exact profile body mentions Approx: %s", data)
	}

	// ?mode=approx: echoed, and the body is visibly marked with its
	// error bounds — an approximate answer is never silent.
	resp, data = post(t, ts.URL+"/v1/profile?mode=approx", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("approx profile status = %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Efes-Profile-Mode"); got != "approx" {
		t.Errorf("approx mode header = %q, want approx", got)
	}
	var marked struct {
		Approx *struct {
			HLLPrecision int `json:"hllPrecision"`
		} `json:"Approx"`
	}
	if err := json.Unmarshal(data, &marked); err != nil {
		t.Fatal(err)
	}
	if marked.Approx == nil {
		t.Errorf("approx profile body lacks the Approx marker: %s", data)
	}

	// The header spelling is equivalent to the query parameter.
	resp, _ = post(t, ts.URL+"/v1/profile", body, map[string]string{"X-Efes-Profile-Mode": "approx"})
	if got := resp.Header.Get("X-Efes-Profile-Mode"); got != "approx" {
		t.Errorf("header-requested mode echoed as %q, want approx", got)
	}

	// An unknown spelling is a 400, not a silent precision change.
	if resp, _ := post(t, ts.URL+"/v1/profile?mode=fuzzy", body, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mode status = %d, want 400", resp.StatusCode)
	}

	// The per-mode counters show up in /v1/status.
	_, data = get(t, ts.URL+"/v1/status")
	var st struct {
		ProfileExact  int64 `json:"profileExact"`
		ProfileApprox int64 `json:"profileApprox"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.ProfileExact != 1 || st.ProfileApprox != 2 {
		t.Errorf("status counters = %d exact / %d approx, want 1/2", st.ProfileExact, st.ProfileApprox)
	}
}

func TestEstimateApproxMarkedAndIsolatedFromExactCache(t *testing.T) {
	dir := t.TempDir()
	openCache := func() *persist.Cache {
		c, err := persist.Open(dir, persist.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	decode := func(data []byte) core.ResultExport {
		var export core.ResultExport
		if err := json.Unmarshal(data, &export); err != nil {
			t.Fatal(err)
		}
		return export
	}

	// An approx-mode daemon marks every estimate body — and the marker
	// survives into the cached bytes, so warm hits are marked too.
	c1 := openCache()
	_, ts1 := newTestServer(t, Config{Cache: c1, ProfileMode: profile.ModeApprox})
	uploadMusic(t, ts1.URL, nil)
	resp, cold := post(t, ts1.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Fatalf("approx cold estimate: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Efes-Cache"))
	}
	if got := decode(cold).ProfileMode; got != "approx" {
		t.Errorf("approx estimate profileMode = %q, want approx", got)
	}
	resp, warm := post(t, ts1.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "hit" {
		t.Fatalf("approx warm estimate not served from cache (%q)", resp.Header.Get("X-Efes-Cache"))
	}
	if got := decode(warm).ProfileMode; got != "approx" {
		t.Errorf("cached approx estimate profileMode = %q, want approx", got)
	}
	ts1.Close()
	c1.Close()

	// An exact-mode daemon over the same cache directory must never see
	// the approx entry: it recomputes (cache miss) and serves an unmarked
	// result — the approx bytes are not silently substituted for exact.
	c2 := openCache()
	defer c2.Close()
	_, ts2 := newTestServer(t, Config{Cache: c2})
	uploadMusic(t, ts2.URL, nil)
	resp, exact := post(t, ts2.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact estimate status = %d: %s", resp.StatusCode, exact)
	}
	if resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Errorf("exact estimate served the approx-mode cache entry (X-Efes-Cache %q, want miss)",
			resp.Header.Get("X-Efes-Cache"))
	}
	if got := decode(exact).ProfileMode; got != "" {
		t.Errorf("exact estimate profileMode = %q, want empty", got)
	}
}

func TestMatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	srcName := scn.Sources[0].Name
	resp, data := post(t, ts.URL+"/v1/match",
		[]byte(fmt.Sprintf(`{"scenario": "music-example", "source": %q}`, srcName)), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status = %d: %s", resp.StatusCode, data)
	}
	var mr struct {
		Count int    `json:"count"`
		Text  string `json:"text"`
	}
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Count == 0 || !strings.Contains(mr.Text, "->") {
		t.Errorf("match response = %+v", mr)
	}
	if resp, _ := post(t, ts.URL+"/v1/match", []byte(`{"scenario": "music-example", "source": "target"}`), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("matching the target status = %d, want 404", resp.StatusCode)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	uploadMusic(t, ts.URL, nil)

	// Exhaust the admission budget directly (deterministic — no racing
	// slow requests needed), then observe the fast 429.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, data := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d: %s", resp.StatusCode, data)
	}
	// Probes bypass admission: the saturated instance stays observable.
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under saturation = %d, want 200", resp.StatusCode)
	}
	resp, data = get(t, ts.URL+"/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status under saturation = %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
	<-s.sem
	<-s.sem
	if resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil); resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain status = %d, want 200", resp.StatusCode)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	uploadMusic(t, ts.URL, nil)
	s.StartDrain()
	if resp, _ := post(t, ts.URL+"/v1/estimate", estimateBody(musicName, ""), nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining estimate status = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	resp, data := get(t, ts.URL+"/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining status endpoint = %d, want 200", resp.StatusCode)
	}
	var st statusResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Error("status does not report draining")
	}
}

func TestWarmRestartInProcess(t *testing.T) {
	dir := t.TempDir()
	openCache := func() *persist.Cache {
		c, err := persist.Open(dir, persist.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c1 := openCache()
	_, ts1 := newTestServer(t, Config{Cache: c1})
	uploadMusic(t, ts1.URL, nil)
	resp, cold := post(t, ts1.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Fatalf("cold estimate: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Efes-Cache"))
	}
	resp, warm := post(t, ts1.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "hit" {
		t.Fatalf("second estimate not served from cache (%q)", resp.Header.Get("X-Efes-Cache"))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cached estimate differs from computed one")
	}
	ts1.Close()
	c1.Close()

	// The "restarted" daemon: fresh server, fresh profiler memo, same
	// cache directory. The same upload content-addresses to the same
	// result entry — served byte-identically with zero recomputation.
	c2 := openCache()
	defer c2.Close()
	s2, ts2 := newTestServer(t, Config{Cache: c2})
	uploadMusic(t, ts2.URL, nil)
	resp, rewarm := post(t, ts2.URL+"/v1/estimate", estimateBody(musicName, ""), nil)
	if resp.Header.Get("X-Efes-Cache") != "hit" {
		t.Fatalf("post-restart estimate not warm (%q)", resp.Header.Get("X-Efes-Cache"))
	}
	if !bytes.Equal(cold, rewarm) {
		t.Fatal("post-restart estimate not byte-identical")
	}
	if _, computes := s2.Profiler().DiskCounters(); computes != 0 {
		t.Errorf("restart recomputed %d profiles for a warm result", computes)
	}

	// Bypassing the result cache still profiles through the durable
	// stats store: the full pipeline re-runs without recomputing a
	// single column profile, and reproduces the bytes exactly.
	resp, recomputed := post(t, ts2.URL+"/v1/estimate", estimateBody(musicName, `, "noCache": true`), nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Efes-Cache") != "miss" {
		t.Fatalf("noCache estimate: status %d, cache %q", resp.StatusCode, resp.Header.Get("X-Efes-Cache"))
	}
	if !bytes.Equal(cold, recomputed) {
		t.Error("noCache estimate not byte-identical to the cold run")
	}
	diskHits, computes := s2.Profiler().DiskCounters()
	if diskHits == 0 || computes != 0 {
		t.Errorf("noCache profiling: %d disk hits / %d computes, want warm disk, zero computes", diskHits, computes)
	}
}
