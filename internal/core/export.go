package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The export DTOs give downstream tooling (dashboards, project planning,
// the paper's source-selection and data-visualization applications) a
// stable JSON view of an estimation result.

// ResultExport is the serializable form of a Result.
type ResultExport struct {
	// Scenario is the analyzed scenario's name.
	Scenario string `json:"scenario"`
	// Quality is the expected result quality ("low eff." / "high qual.").
	Quality string `json:"quality"`
	// TotalMinutes is the overall estimate.
	TotalMinutes float64 `json:"totalMinutes"`
	// Breakdown maps effort categories to minutes.
	Breakdown map[string]float64 `json:"breakdown"`
	// Problems is the total problem count over all modules.
	Problems int `json:"problems"`
	// FitScore is the source-selection fit (higher is better).
	FitScore float64 `json:"fitScore"`
	// Reports carries one entry per module.
	Reports []ReportExport `json:"reports"`
	// Tasks is the priced task list.
	Tasks []TaskExport `json:"tasks"`
	// Degraded reports whether any module failed and the estimate
	// contains fallback contributions.
	Degraded bool `json:"degraded,omitempty"`
	// Failures lists the failed modules of a best-effort run, in module
	// registration order.
	Failures []FailureExport `json:"failures,omitempty"`
	// ProfileMode marks a non-default profiling mode ("approx"): the
	// value-fit statistics carry bounded error instead of being exact.
	// Omitted for exact runs, keeping their JSON byte-identical to the
	// pre-sketch format.
	ProfileMode string `json:"profileMode,omitempty"`
}

// FailureExport is the serializable form of a ModuleFailure.
type FailureExport struct {
	Module          string  `json:"module"`
	Stage           string  `json:"stage"`
	Error           string  `json:"error"`
	Attempts        int     `json:"attempts"`
	FallbackMinutes float64 `json:"fallbackMinutes"`
}

// ReportExport is the serializable form of a module report.
type ReportExport struct {
	Module   string `json:"module"`
	Problems int    `json:"problems"`
	Summary  string `json:"summary"`
}

// TaskExport is the serializable form of a priced task.
type TaskExport struct {
	Type        string             `json:"type"`
	Category    string             `json:"category"`
	Subject     string             `json:"subject,omitempty"`
	Repetitions int                `json:"repetitions"`
	Params      map[string]float64 `json:"params,omitempty"`
	Minutes     float64            `json:"minutes"`
}

// Export converts the result into its serializable form.
func (r *Result) Export() ResultExport {
	out := ResultExport{
		Scenario:     r.Scenario,
		Quality:      r.Estimate.Quality.String(),
		TotalMinutes: r.Estimate.Total(),
		Breakdown:    make(map[string]float64),
		Problems:     r.ProblemCount(),
		FitScore:     FitScore(r),
	}
	for cat, mins := range r.Estimate.ByCategory() {
		out.Breakdown[string(cat)] = mins
	}
	for _, rep := range r.Reports {
		out.Reports = append(out.Reports, ReportExport{
			Module:   rep.ModuleName(),
			Problems: rep.ProblemCount(),
			Summary:  rep.Summary(),
		})
	}
	for _, te := range r.Estimate.Tasks {
		out.Tasks = append(out.Tasks, TaskExport{
			Type:        string(te.Task.Type),
			Category:    string(te.Task.Category),
			Subject:     te.Task.Subject,
			Repetitions: te.Task.Repetitions,
			Params:      te.Task.Params,
			Minutes:     te.Minutes,
		})
	}
	out.Degraded = r.Degraded()
	out.ProfileMode = r.ProfileMode
	for _, mf := range r.Failures {
		msg := ""
		if mf.Err != nil {
			msg = mf.Err.Error()
		}
		out.Failures = append(out.Failures, FailureExport{
			Module:          mf.Module,
			Stage:           mf.Stage,
			Error:           msg,
			Attempts:        mf.Attempts,
			FallbackMinutes: mf.FallbackMinutes,
		})
	}
	return out
}

// JSON renders the result as indented JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Export(), "", "  ")
}

// WriteCSV renders the result as CSV for spreadsheet tooling: one "task"
// row per priced task and, for degraded runs, one "failure" row per failed
// module. The row order (tasks in estimate order, failures in module
// registration order) and every field are deterministic.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "scenario", "category", "type", "subject", "repetitions", "minutes", "detail"}); err != nil {
		return err
	}
	mins := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	for _, te := range r.Estimate.Tasks {
		err := cw.Write([]string{
			"task", r.Scenario, string(te.Task.Category), string(te.Task.Type),
			te.Task.Subject, strconv.Itoa(te.Task.Repetitions), mins(te.Minutes), "",
		})
		if err != nil {
			return err
		}
	}
	for _, mf := range r.Failures {
		detail := fmt.Sprintf("%s failed after %d attempt(s)", mf.Stage, mf.Attempts)
		if mf.Err != nil {
			detail += ": " + mf.Err.Error()
		}
		err := cw.Write([]string{
			"failure", r.Scenario, "", mf.Module, "", "0", mins(mf.FallbackMinutes), detail,
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
