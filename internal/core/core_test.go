package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/mapping"
	"efes/internal/profile"
	"efes/internal/scenario"
	"efes/internal/structure"
	"efes/internal/valuefit"
)

func defaultFramework() *core.Framework {
	return core.New(effort.NewCalculator(effort.DefaultSettings()),
		mapping.New(), structure.New(), valuefit.New())
}

func TestEndToEndRunningExample(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()

	low, err := fw.Estimate(scn, effort.LowEffort)
	if err != nil {
		t.Fatal(err)
	}
	high, err := fw.Estimate(scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if low.TotalMinutes() <= 0 || high.TotalMinutes() <= low.TotalMinutes() {
		t.Errorf("low = %.0f, high = %.0f: high-quality integration must cost more",
			low.TotalMinutes(), high.TotalMinutes())
	}
	if len(low.Reports) != 3 {
		t.Fatalf("reports = %d, want one per module", len(low.Reports))
	}
	if low.ProblemCount() == 0 {
		t.Error("the running example has known problems")
	}
	// All three categories contribute to the high-quality estimate.
	by := high.Estimate.ByCategory()
	for _, cat := range []effort.Category{effort.CategoryMapping, effort.CategoryCleaningStructure, effort.CategoryCleaningValues} {
		if by[cat] <= 0 {
			t.Errorf("category %s contributes nothing: %v", cat, by)
		}
	}
	// The summary contains all module reports and the task table.
	s := high.Summary()
	for _, want := range []string{"music-example", "mapping", "structural conflicts", "value heterogeneities", "Total"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestAssessComplexityOnly(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()
	reports, err := fw.AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	names := map[string]bool{}
	for _, r := range reports {
		names[r.ModuleName()] = true
	}
	if !names["mapping"] || !names["structural conflicts"] || !names["value heterogeneities"] {
		t.Errorf("module names = %v", names)
	}
}

func TestEstimateValidatesScenario(t *testing.T) {
	fw := defaultFramework()
	if _, err := fw.Estimate(&core.Scenario{Name: "empty"}, effort.LowEffort); err == nil {
		t.Error("invalid scenario must be rejected")
	}
}

type failingModule struct{ failAssess bool }

func (m failingModule) Name() string { return "failing" }

func (m failingModule) AssessComplexity(*core.Scenario) (core.Report, error) {
	if m.failAssess {
		return nil, errors.New("assess boom")
	}
	return stubReport{}, nil
}

func (m failingModule) PlanTasks(core.Report, effort.Quality) ([]effort.Task, error) {
	return nil, errors.New("plan boom")
}

type stubReport struct{}

func (stubReport) ModuleName() string { return "stub" }
func (stubReport) Summary() string    { return "stub report" }
func (stubReport) ProblemCount() int  { return 1 }

func TestModuleErrorsArePropagated(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := core.New(effort.NewCalculator(effort.DefaultSettings()), failingModule{failAssess: true})
	if _, err := fw.Estimate(scn, effort.LowEffort); err == nil || !strings.Contains(err.Error(), "assess boom") {
		t.Errorf("assess error not propagated: %v", err)
	}
	fw = core.New(effort.NewCalculator(effort.DefaultSettings()), failingModule{})
	if _, err := fw.Estimate(scn, effort.LowEffort); err == nil || !strings.Contains(err.Error(), "plan boom") {
		t.Errorf("plan error not propagated: %v", err)
	}
}

func TestExtensibilityCustomModule(t *testing.T) {
	// A custom module with a custom task type plugs in without touching
	// the engine, provided an effort function is registered
	// (the paper's extensibility requirement).
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	calc := effort.NewCalculator(effort.DefaultSettings())
	calc.SetFunction("Bribe DBA", func(t effort.Task) float64 { return 42 })
	fw := core.New(calc, bribeModule{})
	res, err := fw.Estimate(scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMinutes() != 42 {
		t.Errorf("total = %v, want 42", res.TotalMinutes())
	}
}

type bribeModule struct{}

func (bribeModule) Name() string { return "bribery" }

func (bribeModule) AssessComplexity(*core.Scenario) (core.Report, error) {
	return stubReport{}, nil
}

func (bribeModule) PlanTasks(core.Report, effort.Quality) ([]effort.Task, error) {
	return []effort.Task{{Type: "Bribe DBA", Category: effort.CategoryMapping, Repetitions: 1}}, nil
}

func TestFitScore(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()
	res, err := fw.Estimate(scn, effort.LowEffort)
	if err != nil {
		t.Fatal(err)
	}
	fit := core.FitScore(res)
	if fit <= 0 || fit >= 1 {
		t.Errorf("fit = %v, want in (0,1)", fit)
	}
	// Less effort means better fit.
	better := &core.Result{Scenario: "x", Estimate: &effort.Estimate{}}
	if core.FitScore(better) <= fit {
		t.Error("zero-effort scenario must fit better")
	}
}

func TestFrameworkAccessors(t *testing.T) {
	calc := effort.NewCalculator(effort.DefaultSettings())
	fw := core.New(calc, mapping.New())
	if len(fw.Modules()) != 1 || fw.Calculator() != calc {
		t.Error("accessors broken")
	}
}

func TestMultiSourceEstimation(t *testing.T) {
	// The framework handles "integration projects with multiple
	// sources" (abstract): two sources integrating into one target
	// produce per-source mapping connections and the union of the
	// cleaning problems.
	single := scenario.MusicExample(scenario.SmallExampleConfig())
	double := scenario.MusicExample(scenario.SmallExampleConfig())
	second := scenario.MusicExample(scenario.SmallExampleConfig()).Sources[0]
	second.Name = "second-source"
	double.Sources = append(double.Sources, second)

	fw := defaultFramework()
	resSingle, err := fw.Estimate(single, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	resDouble, err := fw.Estimate(double, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if resDouble.TotalMinutes() <= resSingle.TotalMinutes() {
		t.Errorf("two sources estimate %.0f should exceed one source %.0f",
			resDouble.TotalMinutes(), resSingle.TotalMinutes())
	}
	if resDouble.ProblemCount() <= resSingle.ProblemCount() {
		t.Errorf("two sources problems %d should exceed one source %d",
			resDouble.ProblemCount(), resSingle.ProblemCount())
	}
	// Roughly double: same source twice doubles the per-source work.
	ratio := resDouble.TotalMinutes() / resSingle.TotalMinutes()
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling the source should roughly double the estimate; ratio = %.2f", ratio)
	}
}

// namedFailing is a module whose detector always fails, for error-order
// tests with several failing modules.
type namedFailing struct{ name string }

func (m namedFailing) Name() string { return m.name }

func (m namedFailing) AssessComplexity(*core.Scenario) (core.Report, error) {
	return nil, errors.New(m.name + " boom")
}

func (m namedFailing) PlanTasks(core.Report, effort.Quality) ([]effort.Task, error) {
	return nil, nil
}

// TestAssessComplexityParallelMatchesSequential runs the detectors
// sequentially and with a worker pool and requires identical reports in
// identical (registration) order.
func TestAssessComplexityParallelMatchesSequential(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	seq, err := defaultFramework().AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := defaultFramework().SetWorkers(4).AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel reports = %d, sequential = %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i].ModuleName() != seq[i].ModuleName() {
			t.Errorf("report %d = %s, want %s (registration order)", i, par[i].ModuleName(), seq[i].ModuleName())
		}
		if par[i].Summary() != seq[i].Summary() {
			t.Errorf("module %s: parallel summary differs from sequential", seq[i].ModuleName())
		}
	}
}

// TestAssessComplexityParallelFirstError requires the error of the
// earliest-registered failing module, regardless of completion order.
func TestAssessComplexityParallelFirstError(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := core.New(effort.NewCalculator(effort.DefaultSettings()),
		mapping.New(), namedFailing{name: "alpha"}, namedFailing{name: "beta"}).SetWorkers(4)
	for i := 0; i < 10; i++ { // completion order varies; result must not
		_, err := fw.AssessComplexity(scn)
		if err == nil || !strings.Contains(err.Error(), "alpha boom") {
			t.Fatalf("err = %v, want the first failing module's error", err)
		}
	}
}

// TestSetWorkersClamps pins the sequential fallback for n < 1.
func TestSetWorkersClamps(t *testing.T) {
	fw := defaultFramework().SetWorkers(-3)
	if fw.Workers() != 1 {
		t.Errorf("workers = %d, want 1", fw.Workers())
	}
	if fw.SetWorkers(8).Workers() != 8 {
		t.Error("SetWorkers(8) not stored")
	}
}

// TestConcurrentEstimatesShareFramework hammers ONE framework (with
// parallel detectors and a shared valuefit profiler) from many
// goroutines, as the parallel experiment grid does. Every goroutine must
// get the same estimate as a private sequential framework. Run with
// -race.
func TestConcurrentEstimatesShareFramework(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	want, err := defaultFramework().Estimate(scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	vm := valuefit.New()
	vm.Profiler = profile.NewProfiler(2)
	shared := core.New(effort.NewCalculator(effort.DefaultSettings()),
		mapping.New(), structure.New(), vm).SetWorkers(2)
	const goroutines = 8
	results := make([]*core.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = shared.Estimate(scn, effort.HighQuality)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Summary() != want.Summary() {
			t.Errorf("goroutine %d: shared-framework estimate differs from private sequential run", i)
		}
	}
	if hits, _ := vm.Profiler.Counters(); hits == 0 {
		t.Error("shared profiler saw no cache hits across concurrent estimates")
	}
}
