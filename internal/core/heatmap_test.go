package core_test

import (
	"strings"
	"testing"

	"efes/internal/core"
	"efes/internal/scenario"
)

func TestHeatmapLocatesProblems(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()
	reports, err := fw.AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	entries := core.Heatmap(reports)
	if len(entries) == 0 {
		t.Fatal("heatmap is empty although the example has problems")
	}
	// Sorted hottest first.
	for i := 1; i < len(entries); i++ {
		if entries[i].Problems > entries[i-1].Problems {
			t.Errorf("heatmap not sorted at %d", i)
		}
	}
	// The records.artist cardinality conflict dominates the example.
	top := entries[0]
	if top.Table != "records" || top.Attribute != "artist" {
		t.Errorf("hottest element = %s.%s, want records.artist", top.Table, top.Attribute)
	}
	if len(top.Modules) == 0 {
		t.Error("hottest element lists no modules")
	}
	// The duration heterogeneity appears at tracks.duration.
	foundDuration := false
	for _, e := range entries {
		if e.Table == "tracks" && e.Attribute == "duration" {
			foundDuration = true
		}
	}
	if !foundDuration {
		t.Errorf("tracks.duration missing from heatmap: %+v", entries)
	}
}

func TestRenderHeatmap(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()
	reports, err := fw.AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	out := core.RenderHeatmap(core.Heatmap(reports))
	for _, want := range []string{"Target element", "records.artist", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if got := core.RenderHeatmap(nil); !strings.Contains(got, "no integration problems") {
		t.Errorf("empty rendering = %q", got)
	}
}

type unlocatableReport struct{ stubReport }

func TestHeatmapSkipsUnlocatableReports(t *testing.T) {
	entries := core.Heatmap([]core.Report{unlocatableReport{}})
	if len(entries) != 0 {
		t.Errorf("unlocatable reports must be skipped: %v", entries)
	}
}
