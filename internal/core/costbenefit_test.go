package core_test

import (
	"strings"
	"testing"

	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/scenario"
)

func exampleCurve(t *testing.T) *core.CostBenefitCurve {
	t.Helper()
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()
	curve, err := fw.CostBenefit(scn)
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

func TestCostBenefitMonotone(t *testing.T) {
	curve := exampleCurve(t)
	if len(curve.Points) < 2 {
		t.Fatalf("curve has %d points; the example has upgradeable problems", len(curve.Points))
	}
	// Effort and quality are both non-decreasing along the curve.
	for i := 1; i < len(curve.Points); i++ {
		prev, cur := curve.Points[i-1], curve.Points[i]
		if cur.Minutes < prev.Minutes {
			t.Errorf("effort decreased at point %d: %v -> %v", i, prev.Minutes, cur.Minutes)
		}
		if cur.QualityShare < prev.QualityShare {
			t.Errorf("quality decreased at point %d", i)
		}
	}
	// The curve starts at the low-effort baseline with zero quality and
	// ends at full quality.
	if curve.Points[0].QualityShare != 0 || curve.Points[0].Upgrade != "" {
		t.Errorf("first point = %+v, want the baseline", curve.Points[0])
	}
	last := curve.Points[len(curve.Points)-1]
	if last.QualityShare != 1 {
		t.Errorf("final quality = %v, want 1", last.QualityShare)
	}
}

func TestCostBenefitEndsAtHighQualityEstimate(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()
	curve, err := fw.CostBenefit(scn)
	if err != nil {
		t.Fatal(err)
	}
	low, err := fw.Estimate(scn, effort.LowEffort)
	if err != nil {
		t.Fatal(err)
	}
	if got := curve.Points[0].Minutes; got != low.TotalMinutes() {
		t.Errorf("baseline = %v, want the low-effort estimate %v", got, low.TotalMinutes())
	}
	// All upgrades applied: at least the high-quality total (the greedy
	// pairing never refunds effort, so the end point can be slightly
	// above but never below).
	high, err := fw.Estimate(scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	last := curve.Points[len(curve.Points)-1]
	if last.Minutes < 0.9*high.TotalMinutes() {
		t.Errorf("curve end %v far below the high-quality estimate %v", last.Minutes, high.TotalMinutes())
	}
}

func TestCostBenefitGreedyOrdering(t *testing.T) {
	curve := exampleCurve(t)
	// Marginal quality per minute must be non-increasing (greedy order),
	// allowing free upgrades at the start.
	prevRate := -1.0
	for i := 1; i < len(curve.Points); i++ {
		dm := curve.Points[i].Minutes - curve.Points[i-1].Minutes
		dq := curve.Points[i].QualityShare - curve.Points[i-1].QualityShare
		if dm <= 0 {
			continue // free upgrade
		}
		rate := dq / dm
		if prevRate >= 0 && rate > prevRate+1e-9 {
			t.Errorf("benefit rate increased at point %d: %v after %v", i, rate, prevRate)
		}
		prevRate = rate
	}
}

func TestCostBenefitNoProblems(t *testing.T) {
	// An identical-schema scenario without conflicts yields a flat curve
	// with just the baseline.
	scn := scenario.MustMusicScenario("d1", "d2", 3)
	fw := defaultFramework()
	curve, err := fw.CostBenefit(scn)
	if err != nil {
		t.Fatal(err)
	}
	if curve.TotalProblems > 0 && curve.Points[len(curve.Points)-1].QualityShare != 1 {
		t.Errorf("curve must reach full quality: %+v", curve.Points)
	}
}

func TestCostBenefitString(t *testing.T) {
	curve := exampleCurve(t)
	s := curve.String()
	for _, want := range []string{"Cost-benefit curve", "baseline", "Quality"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
