package core

import (
	"fmt"
	"sort"
	"strings"

	"efes/internal/effort"
)

// The paper's §7 names cost-benefit analysis as the natural next step:
// "this integration would allow to plot cost-benefit graphs for the
// integration: the more effort, the better the quality of the result."
// CostBenefit implements it on top of the existing task planners: the
// low-effort plan is the mandatory baseline, every high-quality repair is
// an optional upgrade with a marginal cost and a number of problems it
// resolves well, and greedily picking upgrades by marginal benefit yields
// the Pareto-style curve.

// CostBenefitPoint is one point of the curve: after spending Minutes, the
// integration resolves QualityShare of its problems value-preservingly.
type CostBenefitPoint struct {
	// Minutes is the cumulative estimated effort.
	Minutes float64
	// QualityShare is the fraction of detected problems resolved with
	// the high-quality repair, in [0,1].
	QualityShare float64
	// Upgrade names the task upgraded at this point ("" for the
	// baseline point).
	Upgrade string
}

// CostBenefitCurve is the effort-vs-quality trade-off for one scenario.
type CostBenefitCurve struct {
	// Scenario is the analyzed scenario's name.
	Scenario string
	// TotalProblems counts the problems that can be upgraded.
	TotalProblems int
	// Points starts at the mandatory low-effort baseline and adds one
	// point per upgrade, ordered by marginal quality per minute.
	Points []CostBenefitPoint
}

// String renders the curve as a small table.
func (c *CostBenefitCurve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cost-benefit curve for %s (%d upgradeable problems)\n", c.Scenario, c.TotalProblems)
	fmt.Fprintf(&b, "%10s %9s  %s\n", "Minutes", "Quality", "Upgrade")
	for _, p := range c.Points {
		label := p.Upgrade
		if label == "" {
			label = "(low-effort baseline)"
		}
		fmt.Fprintf(&b, "%10.0f %8.0f%%  %s\n", p.Minutes, p.QualityShare*100, label)
	}
	return b.String()
}

// CostBenefit derives the effort-vs-quality curve of a scenario: it plans
// both quality levels, treats shared tasks as mandatory, pairs each
// high-quality repair with its low-effort counterpart by subject, and
// orders the upgrades by problems-resolved per marginal minute.
func (f *Framework) CostBenefit(s *Scenario) (*CostBenefitCurve, error) {
	low, err := f.Estimate(s, effort.LowEffort)
	if err != nil {
		return nil, err
	}
	high, err := f.Estimate(s, effort.HighQuality)
	if err != nil {
		return nil, err
	}
	lowBySubject := make(map[string]effort.TaskEffort)
	for _, te := range low.Estimate.Tasks {
		lowBySubject[taskKey(te.Task)] = te
	}
	type upgrade struct {
		task     effort.Task
		delta    float64
		resolved int
	}
	var upgrades []upgrade
	baseline := low.Estimate.Total()
	total := 0
	for _, te := range high.Estimate.Tasks {
		key := taskKey(te.Task)
		l, hasLow := lowBySubject[key]
		if hasLow && l.Task.Type == te.Task.Type {
			continue // mandatory task, identical at both quality levels
		}
		delta := te.Minutes
		if hasLow {
			delta -= l.Minutes
		}
		if delta < 0 {
			delta = 0 // an upgrade never refunds effort
		}
		resolved := te.Task.Repetitions
		if resolved <= 0 {
			resolved = 1
		}
		total += resolved
		upgrades = append(upgrades, upgrade{task: te.Task, delta: delta, resolved: resolved})
	}
	sort.SliceStable(upgrades, func(i, j int) bool {
		bi := benefitRate(upgrades[i].resolved, upgrades[i].delta)
		bj := benefitRate(upgrades[j].resolved, upgrades[j].delta)
		if bi != bj {
			return bi > bj
		}
		return upgrades[i].task.String() < upgrades[j].task.String()
	})
	curve := &CostBenefitCurve{Scenario: s.Name, TotalProblems: total}
	curve.Points = append(curve.Points, CostBenefitPoint{Minutes: baseline})
	minutes := baseline
	resolved := 0
	for _, u := range upgrades {
		minutes += u.delta
		resolved += u.resolved
		share := 0.0
		if total > 0 {
			share = float64(resolved) / float64(total)
		}
		curve.Points = append(curve.Points, CostBenefitPoint{
			Minutes: minutes, QualityShare: share, Upgrade: u.task.String(),
		})
	}
	return curve, nil
}

// taskKey pairs the low and high variant of one repair: same category and
// subject.
func taskKey(t effort.Task) string {
	return string(t.Category) + "|" + t.Subject
}

// benefitRate orders upgrades; free upgrades come first.
func benefitRate(resolved int, delta float64) float64 {
	if delta <= 0 {
		return float64(resolved) * 1e9
	}
	return float64(resolved) / delta
}
