package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"efes/internal/baseline"
	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/faultinject"
	"efes/internal/mapping"
	"efes/internal/scenario"
	"efes/internal/structure"
	"efes/internal/valuefit"
)

func resilientFramework(r core.Resilience) *core.Framework {
	fw := core.New(effort.NewCalculator(effort.DefaultSettings()),
		mapping.New(), structure.New(), valuefit.New()).SetResilience(r)
	if r.BestEffort {
		fw.SetFallback(baseline.New())
	}
	return fw
}

func TestResilienceBestEffortPanicFallsBack(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+mapping.ModuleName, faultinject.Fault{Kind: faultinject.Panic})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{BestEffort: true})
	res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatalf("best-effort run must not fail: %v", err)
	}
	if !res.Degraded() || len(res.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly the mapping module", res.Failures)
	}
	mf := res.Failures[0]
	if mf.Module != mapping.ModuleName || mf.Stage != "assess" || mf.Attempts != 1 {
		t.Errorf("failure = %+v", mf)
	}
	var pe *core.PanicError
	if !errors.As(mf.Err, &pe) {
		t.Fatalf("err = %v, want a recovered *PanicError", mf.Err)
	}
	if !strings.Contains(pe.Error(), "faultinject: injected panic at core:detector:mapping") {
		t.Errorf("panic message = %q", pe.Error())
	}
	if mf.FallbackMinutes <= 0 {
		t.Errorf("fallback minutes = %v, want the baseline substitute", mf.FallbackMinutes)
	}
	// The surviving two modules still report, and the total includes the
	// fallback contribution.
	if len(res.Reports) != 2 {
		t.Errorf("reports = %d, want the two surviving modules", len(res.Reports))
	}
	if res.TotalMinutes() <= 0 {
		t.Errorf("total = %v, want positive despite the failure", res.TotalMinutes())
	}
	s := res.Summary()
	for _, want := range []string{"DEGRADED: 1 module(s) failed", "baseline fallback"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestResilienceFailFastNamesModule(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+valuefit.ModuleName, faultinject.Fault{Kind: faultinject.Panic})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{})
	_, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err == nil {
		t.Fatal("fail-fast run must surface the failure")
	}
	if !strings.Contains(err.Error(), "core: module "+valuefit.ModuleName) {
		t.Errorf("error does not name the module: %v", err)
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Errorf("error does not carry the cause: %v", err)
	}
}

func TestResilienceModuleTimeoutFault(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+mapping.ModuleName,
		faultinject.Fault{Kind: faultinject.Delay, Delay: 2 * time.Second})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{ModuleTimeout: 30 * time.Millisecond, BestEffort: true})
	start := time.Now()
	res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Errorf("run took %v: the stalled detector must be abandoned at its deadline", elapsed)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
	mf := res.Failures[0]
	if !errors.Is(mf.Err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", mf.Err)
	}
	if got := mf.Err.Error(); !strings.Contains(got, "detector timed out after 30ms") {
		t.Errorf("timeout message = %q, want the configured duration for byte-stable output", got)
	}
}

func TestResilienceRetryRecoversTransientFault(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	// Fail only the first attempt; one retry fixes it even in fail-fast
	// mode.
	faultinject.Enable("core:detector:"+structure.ModuleName,
		faultinject.Fault{Kind: faultinject.Error, OnCall: 1, Times: 1})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{Retries: 1, Backoff: time.Millisecond})
	res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatalf("the retry must recover the transient fault: %v", err)
	}
	if res.Degraded() {
		t.Errorf("failures = %v, want none after a successful retry", res.Failures)
	}
	if got := faultinject.Calls("core:detector:" + structure.ModuleName); got != 2 {
		t.Errorf("detector attempts = %d, want 2", got)
	}
}

func TestResilienceRetryExhaustion(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+mapping.ModuleName, faultinject.Fault{Kind: faultinject.Error})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{Retries: 2, Backoff: time.Millisecond, BestEffort: true})
	res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Attempts != 3 {
		t.Fatalf("failures = %+v, want one failure after 3 attempts", res.Failures)
	}
}

func TestResiliencePlannerFaultDegrades(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:planner:"+mapping.ModuleName, faultinject.Fault{Kind: faultinject.Panic})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{BestEffort: true})
	res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
	mf := res.Failures[0]
	if mf.Module != mapping.ModuleName || mf.Stage != "plan" {
		t.Errorf("failure = %+v, want a plan-stage mapping failure", mf)
	}
	if mf.FallbackMinutes <= 0 {
		t.Errorf("planner failures must also fall back: %+v", mf)
	}
	// The failed module's report is dropped so its (unpriced) problems
	// are not double-counted next to the fallback.
	if len(res.Reports) != 2 {
		t.Errorf("reports = %d, want 2", len(res.Reports))
	}
}

func TestResilienceBestEffortStillHonorsCancellation(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{BestEffort: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.EstimateContext(ctx, scn, effort.HighQuality); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled even in best-effort mode", err)
	}
}

func TestResilienceDegradedProblemCount(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+mapping.ModuleName, faultinject.Fault{Kind: faultinject.Panic})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{BestEffort: true})
	res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProblemCount() == 0 {
		t.Error("the surviving modules still find the example's problems")
	}
}

func TestResilienceDegradedOutputDeterministic(t *testing.T) {
	defer faultinject.Reset()
	scn := scenario.MusicExample(scenario.SmallExampleConfig())

	run := func(workers int) (summary string, jsonOut []byte, csvOut []byte) {
		faultinject.Reset()
		faultinject.Enable("core:detector:"+structure.ModuleName, faultinject.Fault{Kind: faultinject.Panic})
		fw := resilientFramework(core.Resilience{BestEffort: true}).SetWorkers(workers)
		res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return res.Summary(), j, buf.Bytes()
	}

	s1, j1, c1 := run(1)
	for _, workers := range []int{1, 4, 4} {
		s, j, c := run(workers)
		if s != s1 {
			t.Errorf("summary differs at workers=%d:\n%s\nvs\n%s", workers, s, s1)
		}
		if !bytes.Equal(j, j1) {
			t.Errorf("JSON differs at workers=%d", workers)
		}
		if !bytes.Equal(c, c1) {
			t.Errorf("CSV differs at workers=%d", workers)
		}
	}
}

func TestResilienceDegradedExportRoundTrip(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	faultinject.Enable("core:detector:"+valuefit.ModuleName, faultinject.Fault{Kind: faultinject.Error})

	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := resilientFramework(core.Resilience{BestEffort: true})
	res, err := fw.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var exported core.ResultExport
	if err := json.Unmarshal(data, &exported); err != nil {
		t.Fatal(err)
	}
	if !exported.Degraded || len(exported.Failures) != 1 {
		t.Fatalf("export = %+v, want degraded with one failure", exported)
	}
	fe := exported.Failures[0]
	if fe.Module != valuefit.ModuleName || fe.Stage != "assess" {
		t.Errorf("failure export = %+v", fe)
	}
	if !strings.Contains(fe.Error, "faultinject: injected error") {
		t.Errorf("failure error = %q", fe.Error)
	}
	if fe.FallbackMinutes != res.Failures[0].FallbackMinutes {
		t.Errorf("fallback minutes: export %v vs result %v", fe.FallbackMinutes, res.Failures[0].FallbackMinutes)
	}

	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csvText := buf.String()
	if !strings.Contains(csvText, "failure,") || !strings.Contains(csvText, valuefit.ModuleName) {
		t.Errorf("CSV missing the failure row:\n%s", csvText)
	}
}

func TestResilienceWithResilienceDoesNotMutateShared(t *testing.T) {
	base := resilientFramework(core.Resilience{BestEffort: true})
	derived := base.WithResilience(core.Resilience{
		ModuleTimeout: 50 * time.Millisecond, Retries: 2, BestEffort: true,
	})
	if base.ResiliencePolicy().Retries != 0 || base.ResiliencePolicy().ModuleTimeout != 0 {
		t.Errorf("WithResilience mutated the shared framework: %+v", base.ResiliencePolicy())
	}
	if got := derived.ResiliencePolicy(); got.Retries != 2 || got.ModuleTimeout != 50*time.Millisecond {
		t.Errorf("derived policy = %+v", got)
	}
	if derived.Fallback() != base.Fallback() {
		t.Error("derived framework must share the fallback estimator")
	}
	if len(derived.Modules()) != len(base.Modules()) {
		t.Error("derived framework must share the module list")
	}
	// The derived copy is a working pipeline.
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	res, err := derived.EstimateContext(context.Background(), scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Errorf("clean run degraded: %v", res.Failures)
	}
}

func TestResilienceFallbackResultAllModulesDegraded(t *testing.T) {
	fw := resilientFramework(core.Resilience{BestEffort: true})
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	cause := context.DeadlineExceeded
	res, err := fw.FallbackResult(scn, effort.HighQuality, cause)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded() || len(res.Failures) != len(fw.Modules()) {
		t.Fatalf("failures = %d, want one per module (%d)", len(res.Failures), len(fw.Modules()))
	}
	for i, mf := range res.Failures {
		if mf.Module != fw.Modules()[i].Name() {
			t.Errorf("failure %d = %s, want registration order %s", i, mf.Module, fw.Modules()[i].Name())
		}
		if mf.Stage != "deadline" || mf.Attempts != 1 || !errors.Is(mf.Err, cause) {
			t.Errorf("failure %d = %+v", i, mf)
		}
		if mf.FallbackMinutes <= 0 {
			t.Errorf("failure %d has no fallback contribution", i)
		}
	}
	if len(res.Reports) != 0 {
		t.Errorf("reports = %d, want none (nothing ran)", len(res.Reports))
	}
	if res.TotalMinutes() <= 0 {
		t.Error("fallback estimate must still be positive")
	}
	// Deterministic: two builds render byte-identically.
	res2, err := fw.FallbackResult(scn, effort.HighQuality, cause)
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("FallbackResult output not byte-stable")
	}
	if res.Summary() != res2.Summary() {
		t.Error("FallbackResult summary not byte-stable")
	}
}

func TestResilienceFallbackResultValidatesScenario(t *testing.T) {
	fw := resilientFramework(core.Resilience{BestEffort: true})
	if _, err := fw.FallbackResult(&core.Scenario{Name: "empty"}, effort.HighQuality, context.DeadlineExceeded); err == nil {
		t.Fatal("invalid scenario must be rejected")
	}
}
