package core

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's §3.3 names data visualization as a consumer of the
// complexity reports: "highlight parts of the schemas that are hard to
// integrate" [7]. The heatmap aggregates every module's problems onto the
// target schema elements they concern.

// ProblemSite locates one problem cluster on the target schema.
type ProblemSite struct {
	// Table is the affected target table.
	Table string
	// Attribute is the affected target attribute ("" for table-level
	// problems such as mapping connections).
	Attribute string
	// Count is the number of problems at this site.
	Count int
}

// ProblemLocator is implemented by module reports that can locate their
// problems on the target schema. All bundled modules implement it; the
// heatmap silently skips reports that do not.
type ProblemLocator interface {
	ProblemSites() []ProblemSite
}

// HeatmapEntry is one aggregated row of the heatmap.
type HeatmapEntry struct {
	// Table and Attribute locate the schema element.
	Table, Attribute string
	// Problems is the total problem count over all modules.
	Problems int
	// Modules lists the modules reporting problems here.
	Modules []string
}

// Heatmap aggregates the problem sites of all locatable reports onto
// target schema elements, hottest first.
func Heatmap(reports []Report) []HeatmapEntry {
	type key struct{ table, attr string }
	counts := make(map[key]int)
	modules := make(map[key]map[string]struct{})
	for _, rep := range reports {
		loc, ok := rep.(ProblemLocator)
		if !ok {
			continue
		}
		for _, site := range loc.ProblemSites() {
			k := key{site.Table, site.Attribute}
			counts[k] += site.Count
			if modules[k] == nil {
				modules[k] = make(map[string]struct{})
			}
			modules[k][rep.ModuleName()] = struct{}{}
		}
	}
	out := make([]HeatmapEntry, 0, len(counts))
	for k, n := range counts {
		var mods []string
		for m := range modules[k] {
			mods = append(mods, m)
		}
		sort.Strings(mods)
		out = append(out, HeatmapEntry{Table: k.table, Attribute: k.attr, Problems: n, Modules: mods})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Problems != out[j].Problems {
			return out[i].Problems > out[j].Problems
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}

// RenderHeatmap renders the heatmap as text with bar lengths proportional
// to the problem counts.
func RenderHeatmap(entries []HeatmapEntry) string {
	if len(entries) == 0 {
		return "no integration problems located\n"
	}
	var b strings.Builder
	maxCount := entries[0].Problems
	fmt.Fprintf(&b, "%-30s %8s  %-24s %s\n", "Target element", "Problems", "Heat", "Modules")
	for _, e := range entries {
		name := e.Table
		if e.Attribute != "" {
			name += "." + e.Attribute
		}
		barLen := 1
		if maxCount > 0 {
			barLen = 1 + e.Problems*23/maxCount
		}
		fmt.Fprintf(&b, "%-30s %8d  %-24s %s\n", name, e.Problems,
			strings.Repeat("█", barLen), strings.Join(e.Modules, ", "))
	}
	return b.String()
}
