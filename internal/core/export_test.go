package core_test

import (
	"encoding/json"
	"testing"

	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/scenario"
)

func TestResultExportJSON(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	fw := defaultFramework()
	res, err := fw.Estimate(scn, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back core.ResultExport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if back.Scenario != "music-example" || back.Quality != "high qual." {
		t.Errorf("header = %q / %q", back.Scenario, back.Quality)
	}
	if back.TotalMinutes != res.TotalMinutes() {
		t.Errorf("total = %v, want %v", back.TotalMinutes, res.TotalMinutes())
	}
	if len(back.Reports) != 3 {
		t.Errorf("reports = %d", len(back.Reports))
	}
	if len(back.Tasks) != len(res.Estimate.Tasks) {
		t.Errorf("tasks = %d, want %d", len(back.Tasks), len(res.Estimate.Tasks))
	}
	sum := 0.0
	for _, task := range back.Tasks {
		sum += task.Minutes
	}
	if sum != back.TotalMinutes {
		t.Errorf("task minutes sum %v != total %v", sum, back.TotalMinutes)
	}
	if len(back.Breakdown) == 0 || back.Problems == 0 || back.FitScore <= 0 {
		t.Errorf("export incomplete: %+v", back)
	}
}
