// Package core defines the EFES framework of §3: the data integration
// scenario model, the two-dimensional modularization (estimation modules =
// data complexity detector + task planner), and the estimation pipeline
// that separates the objective complexity assessment from the
// context-dependent effort estimation.
package core

import (
	"context"
	"fmt"
	"strings"

	"efes/internal/effort"
	"efes/internal/match"
	"efes/internal/relational"
)

// Source is one source database of a scenario together with the
// correspondences that connect it to the target.
type Source struct {
	// Name identifies the source within the scenario.
	Name string
	// DB is the source instance.
	DB *relational.Database
	// Correspondences connect source elements to target elements.
	Correspondences *match.Set
}

// Scenario is a data integration scenario (§3.1): a set of source
// databases, a target database, and correspondences describing how the
// sources relate to the target.
type Scenario struct {
	// Name identifies the scenario (e.g. "s1-s2").
	Name string
	// Sources are the databases to integrate.
	//
	//efes:bounded one entry per source database of the scenario definition; fixed after construction
	Sources []*Source
	// Target is the database to integrate into.
	Target *relational.Database
}

// Validate checks the scenario for basic well-formedness: at least one
// source, a target, unique source names, and correspondences that refer
// to existing elements and are not duplicated (detectors count each
// correspondence, so a duplicate would silently double its problems and
// effort).
func (s *Scenario) Validate() error {
	if s.Target == nil {
		return fmt.Errorf("core: scenario %s has no target", s.Name)
	}
	if len(s.Sources) == 0 {
		return fmt.Errorf("core: scenario %s has no sources", s.Name)
	}
	names := make(map[string]bool, len(s.Sources))
	for _, src := range s.Sources {
		if names[src.Name] {
			return fmt.Errorf("core: scenario %s has duplicate source name %s", s.Name, src.Name)
		}
		names[src.Name] = true
		if src.DB == nil {
			return fmt.Errorf("core: source %s has no database", src.Name)
		}
		if src.Correspondences == nil {
			return fmt.Errorf("core: source %s has no correspondences", src.Name)
		}
		seen := make(map[string]bool, len(src.Correspondences.All))
		for _, c := range src.Correspondences.All {
			key := c.SourceTable + "\x00" + c.SourceColumn + "\x00" + c.TargetTable + "\x00" + c.TargetColumn
			if seen[key] {
				return fmt.Errorf("core: source %s has duplicate correspondence %s", src.Name, c)
			}
			seen[key] = true
			st := src.DB.Schema.Table(c.SourceTable)
			if st == nil {
				return fmt.Errorf("core: correspondence %s: unknown source table", c)
			}
			tt := s.Target.Schema.Table(c.TargetTable)
			if tt == nil {
				return fmt.Errorf("core: correspondence %s: unknown target table", c)
			}
			if !c.IsTableLevel() {
				if st.ColumnIndex(c.SourceColumn) < 0 {
					return fmt.Errorf("core: correspondence %s: unknown source column", c)
				}
				if tt.ColumnIndex(c.TargetColumn) < 0 {
					return fmt.Errorf("core: correspondence %s: unknown target column", c)
				}
			}
		}
	}
	return nil
}

// Report is a data complexity report (§3.3). There is intentionally no
// fixed structure — each module tailors its report to its complexity
// indicators — but every report renders itself for the user, as the
// reports "inform the user about integration problems within the
// scenario" independently of the effort estimate.
type Report interface {
	// ModuleName names the module that produced the report.
	ModuleName() string
	// Summary renders the report as human-readable text.
	Summary() string
	// ProblemCount returns the number of concrete integration problems
	// found (used by source selection and tests).
	ProblemCount() int
}

// Module is an estimation module (§3.2): a data complexity detector paired
// with a task planner. Detectors depend only on schemas and instances
// (objective, context-free); planners translate reported problems into
// tasks for a desired result quality.
type Module interface {
	// Name identifies the module.
	Name() string
	// AssessComplexity runs the module's data complexity detector.
	AssessComplexity(s *Scenario) (Report, error)
	// PlanTasks runs the module's task planner on a report produced by
	// this module's AssessComplexity.
	PlanTasks(r Report, q effort.Quality) ([]effort.Task, error)
}

// Result is the outcome of running the framework on a scenario: the
// complexity reports (phase 1) and the priced effort estimate (phase 2).
type Result struct {
	// Scenario is the analyzed scenario's name.
	Scenario string
	// Reports holds one complexity report per module, in module order.
	// In a degraded best-effort run, failed modules have no report.
	Reports []Report
	// Estimate is the priced task list. In a degraded run it includes
	// the fallback tasks substituted for failed modules.
	Estimate *effort.Estimate
	// Failures lists the modules that failed during a best-effort run,
	// in module registration order. Empty for a clean run.
	Failures []ModuleFailure
	// ProfileMode records a non-default profiling mode: "approx" when
	// the value-fit statistics were computed by the sketch-based kernels
	// with bounded error instead of exactly. Empty for exact runs, so
	// exact summaries and JSON stay byte-identical to the pre-sketch
	// format — an approximate result is always visibly marked, never
	// silently substituted.
	ProfileMode string
}

// Degraded reports whether any module failed and the estimate includes
// fallback contributions.
func (r *Result) Degraded() bool { return len(r.Failures) > 0 }

// TotalMinutes returns the estimated total effort.
func (r *Result) TotalMinutes() float64 { return r.Estimate.Total() }

// ProblemCount sums the problems of all module reports.
func (r *Result) ProblemCount() int {
	n := 0
	for _, rep := range r.Reports {
		n += rep.ProblemCount()
	}
	return n
}

// Summary renders all complexity reports, any module failures, and the
// estimate. Degraded summaries are byte-stable across runs and worker
// counts: failures appear in module registration order with deterministic
// messages.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Scenario %s ===\n", r.Scenario)
	if r.ProfileMode != "" {
		fmt.Fprintf(&b, "(profiling mode: %s — sketch-based statistics with bounded error)\n", r.ProfileMode)
	}
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "--- %s ---\n%s\n", rep.ModuleName(), rep.Summary())
	}
	if r.Degraded() {
		fmt.Fprintf(&b, "--- DEGRADED: %d module(s) failed ---\n", len(r.Failures))
		for _, mf := range r.Failures {
			fmt.Fprintf(&b, "%s\n", mf)
		}
		b.WriteString("\n")
	}
	b.WriteString(r.Estimate.String())
	return b.String()
}

// Framework wires estimation modules to an effort calculator (Figure 3).
type Framework struct {
	modules  []Module
	calc     *effort.Calculator
	workers  int
	res      Resilience
	fallback FallbackEstimator
}

// New creates a framework with the given calculator and modules. Modules
// run in registration order.
func New(calc *effort.Calculator, modules ...Module) *Framework {
	return &Framework{modules: modules, calc: calc, workers: 1}
}

// Modules returns the registered modules.
func (f *Framework) Modules() []Module { return f.modules }

// Calculator returns the effort calculator.
func (f *Framework) Calculator() *effort.Calculator { return f.calc }

// SetWorkers sets how many module detectors AssessComplexity may run
// concurrently. Values below one select one worker (sequential). Call it
// before sharing the framework across goroutines; the framework itself is
// then safe for concurrent Estimate/AssessComplexity calls as long as the
// registered modules are (the built-in modules are: detectors are pure
// §3.2 functions of the scenario, and the valuefit profiler cache is
// concurrency-safe).
func (f *Framework) SetWorkers(n int) *Framework {
	if n < 1 {
		n = 1
	}
	f.workers = n
	return f
}

// Workers returns the configured detector concurrency.
func (f *Framework) Workers() int { return f.workers }

// AssessComplexity runs only phase 1 on the scenario: every module's data
// complexity detector. The reports are independent of execution settings
// and expected quality, and are useful on their own (source selection,
// data visualization). Detectors are objective and context-free (§3.2),
// so with SetWorkers(n>1) they run concurrently; the result is
// nevertheless deterministic: reports stay in module registration order
// and on failure the first error in registration order is returned.
func (f *Framework) AssessComplexity(s *Scenario) ([]Report, error) {
	reports, _, err := f.AssessComplexityContext(context.Background(), s)
	return reports, err
}

// Estimate runs the full two-phase pipeline: complexity assessment, task
// planning for the expected quality, and effort calculation. It is
// EstimateContext without a deadline; with the zero Resilience policy the
// behavior matches the historical strict pipeline.
func (f *Framework) Estimate(s *Scenario, q effort.Quality) (*Result, error) {
	return f.EstimateContext(context.Background(), s, q)
}

// FitScore ranks how well a source fits the target for source selection
// [9]: fewer problems and less estimated effort mean a better fit. The
// score is 1/(1+minutes); ties break on problem count.
func FitScore(r *Result) float64 {
	return 1 / (1 + r.TotalMinutes() + 0.001*float64(r.ProblemCount()))
}
