package core_test

import (
	"strings"
	"testing"

	"efes/internal/scenario"
)

func TestValidateRejectsDuplicateSourceNames(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	dup := *scn.Sources[0]
	scn.Sources = append(scn.Sources, &dup)
	err := scn.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate source name") {
		t.Errorf("err = %v, want a duplicate-source-name rejection", err)
	}
}

func TestValidateRejectsDuplicateCorrespondences(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	corrs := scn.Sources[0].Correspondences
	corrs.All = append(corrs.All, corrs.All[0])
	err := scn.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate correspondence") {
		t.Errorf("err = %v, want a duplicate-correspondence rejection", err)
	}
	// A duplicate scenario must also be rejected by the pipeline entry
	// point, before any detector runs.
	fw := defaultFramework()
	if _, err := fw.AssessComplexity(scn); err == nil {
		t.Error("AssessComplexity must validate the scenario")
	}
}
