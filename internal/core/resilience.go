package core

// The resilience layer: context-aware pipeline entry points with
// per-module deadlines, panic isolation, bounded retry-with-backoff, and
// graceful degradation onto the attribute-counting baseline. The paper's
// premise is estimating effort over dirty, half-broken source data
// *before* cleaning it, so a single malformed input or panicking detector
// must not take down the whole estimation run: in best-effort mode a
// failed module is recorded on the Result and its effort contribution is
// replaced by a fallback estimate, keeping the overall figure usable.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"efes/internal/effort"
	"efes/internal/faultinject"
)

// Resilience configures how the framework reacts to module failures.
// The zero value reproduces the historical strict behavior: no deadlines,
// no retries, abort on the first failure (panics are still converted to
// errors instead of crashing the process).
type Resilience struct {
	// ModuleTimeout is the deadline for one detector attempt; 0 means
	// no per-module deadline. The overall deadline is the caller's
	// context deadline.
	ModuleTimeout time.Duration
	// Retries is how many times a failed detector attempt is retried
	// (so a detector runs at most Retries+1 times). Context
	// cancellation and deadline expiry are never retried.
	Retries int
	// Backoff is the wait before the first retry; it doubles with each
	// further retry and is interruptible by the context.
	Backoff time.Duration
	// BestEffort degrades instead of aborting: a module that still
	// fails after all retries is recorded as a ModuleFailure on the
	// Result and its effort contribution falls back to the framework's
	// FallbackEstimator. When false (fail-fast), the first failure
	// aborts the run with an error naming the module.
	BestEffort bool
}

// ModuleFailure records one module that failed during a best-effort run.
type ModuleFailure struct {
	// Module is the failed module's name.
	Module string
	// Stage is the pipeline stage that failed: "assess", "plan", or
	// "deadline" (the whole request's deadline expired before the
	// pipeline finished — see FallbackResult).
	Stage string
	// Err is the final error (a recovered panic becomes a *PanicError).
	Err error
	// Attempts is how many times the stage was attempted.
	Attempts int
	// FallbackMinutes is the effort substituted for the module by the
	// fallback estimator (0 when no fallback is configured).
	FallbackMinutes float64
}

// String renders the failure for Result.Summary. The rendering is
// deterministic as long as Err's message is (injected faults and deadline
// errors are).
func (mf ModuleFailure) String() string {
	s := fmt.Sprintf("%s: %s failed after %d attempt(s): %v", mf.Module, mf.Stage, mf.Attempts, mf.Err)
	if mf.FallbackMinutes > 0 {
		s += fmt.Sprintf(" — baseline fallback %.0f min", mf.FallbackMinutes)
	}
	return s
}

// PanicError is a detector or planner panic recovered by the isolation
// layer. Error renders only the panic value — not the stack — so degraded
// reports stay byte-stable across runs; the stack is kept for debugging.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// FallbackEstimator supplies a replacement effort contribution for a
// failed module (the attribute-counting baseline of §6 in the standard
// wiring; see efes.NewFramework). The returned tasks are pre-priced:
// fallback estimators do not depend on the calculator's function table.
type FallbackEstimator interface {
	FallbackTasks(s *Scenario, module string, q effort.Quality) []effort.TaskEffort
}

// ContextModule is an optional interface for modules whose detector
// honors cancellation. The framework's context-aware entry points call
// AssessComplexityContext when a module implements it; other modules run
// their plain detector under a deadline watchdog (the attempt is
// abandoned, not interrupted, when the deadline expires).
type ContextModule interface {
	AssessComplexityContext(ctx context.Context, s *Scenario) (Report, error)
}

// SetResilience configures deadlines, retries, and the degradation mode.
// Like SetWorkers it must be called before sharing the framework across
// goroutines.
func (f *Framework) SetResilience(r Resilience) *Framework {
	f.res = r
	return f
}

// ResiliencePolicy returns the configured resilience settings.
func (f *Framework) ResiliencePolicy() Resilience { return f.res }

// WithResilience returns a copy of the framework with the given policy,
// sharing the modules, calculator, and fallback estimator of the
// original. Unlike SetResilience it does not mutate the receiver, so a
// framework shared across concurrent requests (e.g. by the efesd daemon)
// can derive a per-request policy without a data race.
func (f *Framework) WithResilience(r Resilience) *Framework {
	g := *f
	g.res = r
	return &g
}

// FallbackResult builds the fully degraded Result for a request whose
// overall deadline expired (or that failed wholesale for another reason)
// before the pipeline could finish: every module is recorded as a
// "deadline"-stage failure carrying the cause, and the estimate consists
// purely of the fallback estimator's tasks, in module registration
// order. EstimateContext deliberately surfaces the caller's cancellation
// as an error instead of degrading (a half-cancelled run must not
// masquerade as a clean one); FallbackResult is the explicit opt-in for
// callers — like a best-effort service endpoint — that still owe their
// client an answer. The output is deterministic as long as cause's
// message is.
func (f *Framework) FallbackResult(s *Scenario, q effort.Quality, cause error) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	est, err := f.calc.Price(q, nil)
	if err != nil {
		return nil, err
	}
	failures := make([]ModuleFailure, 0, len(f.modules))
	for _, m := range f.modules {
		mf := ModuleFailure{Module: m.Name(), Stage: "deadline", Err: cause, Attempts: 1}
		if f.fallback != nil {
			fb := f.fallback.FallbackTasks(s, m.Name(), q)
			for _, te := range fb {
				mf.FallbackMinutes += te.Minutes
			}
			est.Tasks = append(est.Tasks, fb...)
		}
		failures = append(failures, mf)
	}
	return &Result{Scenario: s.Name, Estimate: est, Failures: failures}, nil
}

// SetFallback installs the estimator that replaces a failed module's
// effort contribution in best-effort mode. Without a fallback a failed
// module contributes zero effort (it is still listed on the Result).
func (f *Framework) SetFallback(fb FallbackEstimator) *Framework {
	f.fallback = fb
	return f
}

// Fallback returns the configured fallback estimator, if any.
func (f *Framework) Fallback() FallbackEstimator { return f.fallback }

// detectorOutcome is one detector attempt's result.
type detectorOutcome struct {
	rep Report
	err error
}

// attemptDetector runs one detector attempt under panic recovery and the
// per-module deadline. The attempt runs on its own goroutine so that an
// expired deadline abandons it (the goroutine finishes in the background
// and its result is discarded — detectors are pure functions of the
// scenario, so nothing needs to be rolled back).
func (f *Framework) attemptDetector(ctx context.Context, m Module, s *Scenario) (Report, error) {
	mctx := ctx
	if f.res.ModuleTimeout > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(ctx, f.res.ModuleTimeout)
		defer cancel()
	}
	// The goroutine below is deliberately detached — no WaitGroup joins
	// it. Its leak-freedom proof (checked statically by efeslint's goleak
	// rule) is the cap-1 buffer: exactly one of the three sends executes
	// per attempt (the recover arm only fires when the normal sends were
	// skipped by the panic), so the send completes even after the select
	// below has abandoned the attempt, and the goroutine always runs to
	// completion. Shrinking the buffer or adding a second dynamic send
	// would turn the abandon path into a permanent goroutine leak.
	//
	// The one transitive wait the analyzer flags — csg.findRoundParallel's
	// WaitGroup.Wait — is bounded: every branch it joins is Add/defer-Done
	// paired, runs a finite depth-limited DFS under a step budget, and
	// polls mctx every 1024 visits, so when the select below abandons the
	// attempt the deferred cancel unblocks the branches and the Wait (and
	// with it this goroutine) still terminates promptly.
	ch := make(chan detectorOutcome, 1)
	//lint:ignore goleak findRoundParallel's Wait is bounded (branches are Add/defer-Done paired, budget-limited, and poll mctx), so the detached attempt always runs to completion; the cap-1 buffered send then never blocks
	go func() {
		defer func() {
			if v := recover(); v != nil {
				ch <- detectorOutcome{err: &PanicError{Value: v, Stack: debug.Stack()}}
			}
		}()
		if err := faultinject.Fire("core:detector:" + m.Name()); err != nil {
			ch <- detectorOutcome{err: err}
			return
		}
		var o detectorOutcome
		if cm, ok := m.(ContextModule); ok {
			o.rep, o.err = cm.AssessComplexityContext(mctx, s)
		} else {
			//lint:ignore ctxflow this branch only runs for modules whose dynamic type has no Context variant — the type assertion above already routes every ContextModule through AssessComplexityContext(mctx)
			o.rep, o.err = m.AssessComplexity(s)
		}
		ch <- o
	}()
	select {
	case o := <-ch:
		return o.rep, o.err
	case <-mctx.Done():
		err := mctx.Err()
		if ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
			// The module's own deadline, not the caller's: name it with
			// the configured timeout so the message is byte-stable.
			err = fmt.Errorf("detector timed out after %s: %w", f.res.ModuleTimeout, context.DeadlineExceeded)
		}
		return nil, err
	}
}

// runDetector runs one module's detector under the full policy: panic
// recovery, per-module deadline, and retry-with-backoff. It returns the
// report, the number of attempts made, and the final error.
func (f *Framework) runDetector(ctx context.Context, m Module, s *Scenario) (Report, int, error) {
	attempts := 0
	var lastErr error
	for try := 0; try <= f.res.Retries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, attempts, err
		}
		if try > 0 && f.res.Backoff > 0 {
			t := time.NewTimer(f.res.Backoff << (try - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, attempts, ctx.Err()
			case <-t.C:
			}
		}
		attempts++
		rep, err := f.attemptDetector(ctx, m, s)
		if err == nil {
			return rep, attempts, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cancellation is final, and a module that just exhausted
			// its deadline would only exhaust it again.
			return nil, attempts, err
		}
	}
	return nil, attempts, lastErr
}

// runPlanner runs one module's task planner under panic recovery. The
// planner is a cheap, deterministic function of the report, so it gets
// isolation but no deadline or retries.
func (f *Framework) runPlanner(m Module, r Report, q effort.Quality) (tasks []effort.Task, err error) {
	defer func() {
		if v := recover(); v != nil {
			tasks, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Fire("core:planner:" + m.Name()); err != nil {
		return nil, err
	}
	return m.PlanTasks(r, q)
}

// assessAligned runs every detector under the resilience policy and
// returns reports aligned with the module list (nil entries for failed
// modules), the failures in registration order, and — in fail-fast mode
// or on overall cancellation — the first error in registration order.
func (f *Framework) assessAligned(ctx context.Context, s *Scenario) ([]Report, []ModuleFailure, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	reports := make([]Report, len(f.modules))
	attempts := make([]int, len(f.modules))
	errs := make([]error, len(f.modules))
	if f.workers <= 1 || len(f.modules) <= 1 {
		for i, m := range f.modules {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			reports[i], attempts[i], errs[i] = f.runDetector(ctx, m, s)
			if errs[i] != nil && !f.res.BestEffort {
				return nil, nil, fmt.Errorf("core: module %s: %w", m.Name(), errs[i])
			}
		}
	} else {
		sem := make(chan struct{}, f.workers)
		var wg sync.WaitGroup
		for i, m := range f.modules {
			wg.Add(1)
			go func(i int, m Module) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				reports[i], attempts[i], errs[i] = f.runDetector(ctx, m, s)
			}(i, m)
		}
		wg.Wait()
	}
	var failures []ModuleFailure
	for i, err := range errs { // registration order
		if err == nil {
			continue
		}
		if !f.res.BestEffort || ctx.Err() != nil {
			// Fail fast, or the whole run was cancelled: degrading
			// would silently swallow the caller's cancellation.
			return nil, nil, fmt.Errorf("core: module %s: %w", f.modules[i].Name(), err)
		}
		failures = append(failures, ModuleFailure{
			Module: f.modules[i].Name(), Stage: "assess", Err: err, Attempts: attempts[i],
		})
	}
	return reports, failures, nil
}

// AssessComplexityContext is AssessComplexity with overall cancellation,
// per-module deadlines, and graceful degradation. Successful reports are
// returned in module registration order; in best-effort mode failed
// modules are skipped and listed (in registration order) as failures. In
// fail-fast mode (the default) the first failure in registration order is
// returned as an error naming the module.
func (f *Framework) AssessComplexityContext(ctx context.Context, s *Scenario) ([]Report, []ModuleFailure, error) {
	aligned, failures, err := f.assessAligned(ctx, s)
	if err != nil {
		return nil, nil, err
	}
	var reports []Report
	for _, r := range aligned {
		if r != nil {
			reports = append(reports, r)
		}
	}
	return reports, failures, nil
}

// EstimateContext is Estimate with overall cancellation, per-module
// deadlines, and graceful degradation. In best-effort mode a Result is
// returned even when modules failed: the failures are listed on the
// Result (Result.Degraded reports true) and each failed module's effort
// contribution is replaced by the fallback estimator's tasks, appended
// after the regular tasks in module registration order. The output is
// deterministic across runs and worker counts.
func (f *Framework) EstimateContext(ctx context.Context, s *Scenario, q effort.Quality) (*Result, error) {
	aligned, failures, err := f.assessAligned(ctx, s)
	if err != nil {
		return nil, err
	}
	failed := make(map[string]bool, len(failures))
	for _, mf := range failures {
		failed[mf.Module] = true
	}
	var tasks []effort.Task
	for i, m := range f.modules {
		if aligned[i] == nil {
			continue // already failed at assess
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ts, perr := f.runPlanner(m, aligned[i], q)
		if perr != nil {
			if !f.res.BestEffort {
				return nil, fmt.Errorf("core: module %s: %w", m.Name(), perr)
			}
			failures = append(failures, ModuleFailure{
				Module: m.Name(), Stage: "plan", Err: perr, Attempts: 1,
			})
			failed[m.Name()] = true
			aligned[i] = nil // drop the report: its tasks are replaced by the fallback
			continue
		}
		tasks = append(tasks, ts...)
	}
	est, err := f.calc.Price(q, tasks)
	if err != nil {
		return nil, err
	}
	// Replace each failed module's contribution by the fallback estimate,
	// in registration order for determinism.
	sort.SliceStable(failures, func(i, j int) bool {
		return f.moduleIndex(failures[i].Module) < f.moduleIndex(failures[j].Module)
	})
	if f.fallback != nil {
		for i := range failures {
			fb := f.fallback.FallbackTasks(s, failures[i].Module, q)
			for _, te := range fb {
				failures[i].FallbackMinutes += te.Minutes
			}
			est.Tasks = append(est.Tasks, fb...)
		}
	}
	var reports []Report
	for _, r := range aligned {
		if r != nil {
			reports = append(reports, r)
		}
	}
	return &Result{Scenario: s.Name, Reports: reports, Estimate: est, Failures: failures}, nil
}

// moduleIndex returns the registration index of the named module (or
// len(modules) for unknown names).
func (f *Framework) moduleIndex(name string) int {
	for i, m := range f.modules {
		if m.Name() == name {
			return i
		}
	}
	return len(f.modules)
}
