// Package mapping implements the mapping estimation module of §3.3-3.4:
// its data complexity detector measures, for each target table and each
// source database providing data for it, the work needed to establish the
// connection — the number of source tables to be queried (including join
// tables), the number of attributes to be copied, whether new primary key
// values must be generated, and how many foreign keys the mapping must
// populate (Table 2). Its task planner emits one "Write mapping" task per
// connection (Example 3.8).
package mapping

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/relational"
)

// Connection describes the mapping complexity of one (target table,
// source database) pair: one row of the paper's Table 2.
type Connection struct {
	// TargetTable is the target table to be populated.
	TargetTable string
	// Source is the name of the source database providing the data.
	Source string
	// SourceTables are the source tables that must be queried/combined,
	// including intermediate join tables.
	SourceTables []string
	// Attributes is the number of attributes to be copied.
	Attributes int
	// NeedsPK reports whether new primary key values must be generated
	// for the integrated tuples.
	NeedsPK bool
	// ForeignKeys is the number of target foreign keys the mapping must
	// populate for this table.
	ForeignKeys int
}

// Report is the mapping module's data complexity report.
type Report struct {
	// Connections holds one entry per (target table, source) pair that
	// receives data, in deterministic order.
	Connections []Connection
}

// ModuleName implements core.Report.
func (r *Report) ModuleName() string { return ModuleName }

// ProblemCount implements core.Report: every connection is one mapping
// problem to solve.
func (r *Report) ProblemCount() int { return len(r.Connections) }

// Summary renders the report in the shape of the paper's Table 2.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-10s %13s %11s %12s\n", "Target table", "Source", "Source tables", "Attributes", "Primary key")
	for _, c := range r.Connections {
		pk := "no"
		if c.NeedsPK {
			pk = "yes"
		}
		fmt.Fprintf(&b, "%-14s %-10s %13d %11d %12s\n", c.TargetTable, c.Source, len(c.SourceTables), c.Attributes, pk)
	}
	return b.String()
}

// ProblemSites implements core.ProblemLocator: one table-level site per
// mapping connection.
func (r *Report) ProblemSites() []core.ProblemSite {
	var out []core.ProblemSite
	for _, c := range r.Connections {
		out = append(out, core.ProblemSite{Table: c.TargetTable, Count: 1})
	}
	return out
}

// ModuleName is the module's registered name.
const ModuleName = "mapping"

// Module is the mapping estimation module.
type Module struct{}

// New creates the mapping module.
func New() *Module { return &Module{} }

// Name implements core.Module.
func (m *Module) Name() string { return ModuleName }

// AssessComplexity implements core.Module. For each target table and each
// source database with correspondences into that table it derives a
// Connection: the contributing source tables are closed under the join
// paths (foreign keys) needed to combine them, attributes are counted from
// the attribute correspondences, and primary key generation is required
// when no corresponding source attribute covers the target key with unique
// values.
func (m *Module) AssessComplexity(s *core.Scenario) (core.Report, error) {
	return m.AssessComplexityContext(context.Background(), s)
}

// AssessComplexityContext implements core.ContextModule: the detector
// checks for cancellation between (source, target table) pairs, so a
// cancelled or expired context stops the assessment promptly.
func (m *Module) AssessComplexityContext(ctx context.Context, s *core.Scenario) (core.Report, error) {
	report := &Report{}
	for _, src := range s.Sources {
		adj := fkAdjacency(src.DB.Schema)
		for _, tt := range s.Target.Schema.Tables() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			attrCorrs := src.Correspondences.ForTarget(tt.Name)
			tableCorr := tableLevelSource(src, tt.Name)
			if len(attrCorrs) == 0 && tableCorr == "" {
				continue // this source provides no data for the table
			}
			contributing := make(map[string]struct{})
			if tableCorr != "" {
				contributing[tableCorr] = struct{}{}
			}
			for _, c := range attrCorrs {
				contributing[c.SourceTable] = struct{}{}
			}
			// Attributes to be *copied* exclude correspondences into
			// target foreign key columns: those feed the re-keying
			// logic below rather than plain value copies (Table 2
			// counts 2 attributes for tracks although name, album,
			// and length all correspond).
			fkCols := targetFKColumns(s.Target.Schema, tt.Name)
			copied := 0
			for _, c := range attrCorrs {
				if _, isFK := fkCols[c.TargetColumn]; !isFK {
					copied++
				}
			}
			// Foreign keys into target tables whose primary key is
			// generated must be re-keyed: the mapping additionally
			// queries the source table feeding the referenced table
			// (to identify the referenced entity) and the referenced
			// target table itself (to look up the generated keys).
			var rekeyed []string
			for _, fk := range s.Target.Schema.ForeignKeysOf(tt.Name) {
				if !needsPKGeneration(s.Target.Schema, src, fk.RefTable) {
					continue
				}
				if refSrc := tableLevelSource(src, fk.RefTable); refSrc != "" {
					contributing[refSrc] = struct{}{}
				}
				rekeyed = append(rekeyed, "target:"+fk.RefTable)
			}
			tables := append(connectTables(adj, contributing), rekeyed...)
			sort.Strings(tables)
			conn := Connection{
				TargetTable:  tt.Name,
				Source:       src.Name,
				SourceTables: tables,
				Attributes:   copied,
				NeedsPK:      needsPKGeneration(s.Target.Schema, src, tt.Name),
				ForeignKeys:  len(s.Target.Schema.ForeignKeysOf(tt.Name)),
			}
			report.Connections = append(report.Connections, conn)
		}
	}
	sort.Slice(report.Connections, func(i, j int) bool {
		a, b := report.Connections[i], report.Connections[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.TargetTable < b.TargetTable
	})
	return report, nil
}

// PlanTasks implements core.Module: one Write mapping task per connection.
// Mapping work is required regardless of the expected result quality.
func (m *Module) PlanTasks(r core.Report, _ effort.Quality) ([]effort.Task, error) {
	rep, ok := r.(*Report)
	if !ok {
		return nil, fmt.Errorf("mapping: foreign report type %T", r)
	}
	var tasks []effort.Task
	for _, c := range rep.Connections {
		pks := 0.0
		if c.NeedsPK {
			pks = 1
		}
		tasks = append(tasks, effort.Task{
			Type:        effort.TaskWriteMapping,
			Category:    effort.CategoryMapping,
			Subject:     fmt.Sprintf("%s <- %s", c.TargetTable, c.Source),
			Repetitions: 1,
			Params: map[string]float64{
				"tables":     float64(len(c.SourceTables)),
				"attributes": float64(c.Attributes),
				"PKs":        pks,
				"FKs":        float64(c.ForeignKeys),
			},
		})
	}
	return tasks, nil
}

// targetFKColumns returns the set of columns of the target table that are
// part of a foreign key.
func targetFKColumns(s *relational.Schema, table string) map[string]struct{} {
	out := make(map[string]struct{})
	for _, fk := range s.ForeignKeysOf(table) {
		for _, col := range fk.Columns {
			out[col] = struct{}{}
		}
	}
	return out
}

// tableLevelSource returns the source table with a table-level
// correspondence into the target table, or "".
func tableLevelSource(src *core.Source, targetTable string) string {
	for _, c := range src.Correspondences.All {
		if c.IsTableLevel() && c.TargetTable == targetTable {
			return c.SourceTable
		}
	}
	return ""
}

// needsPKGeneration reports whether new primary key values must be
// generated: the target table has a primary key and some key column lacks
// a correspondence from a unique source attribute.
func needsPKGeneration(target *relational.Schema, src *core.Source, targetTable string) bool {
	pk, ok := target.PrimaryKeyOf(targetTable)
	if !ok {
		return false
	}
	for _, keyCol := range pk.Columns {
		covered := false
		for _, c := range src.Correspondences.ForTargetColumn(targetTable, keyCol) {
			if src.DB.Schema.Unique(c.SourceTable, c.SourceColumn) {
				covered = true
				break
			}
		}
		if !covered {
			return true
		}
	}
	return false
}

// fkAdjacency builds an undirected table adjacency from the schema's
// foreign keys (the join graph).
func fkAdjacency(s *relational.Schema) map[string][]string {
	adj := make(map[string][]string)
	add := func(a, b string) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, fk := range s.ForeignKeys() {
		add(fk.Table, fk.RefTable)
	}
	for t := range adj {
		sort.Strings(adj[t])
	}
	return adj
}

// connectTables closes the contributing table set under shortest join
// paths: every pair of contributing tables is connected via the FK graph
// and the tables on the connecting paths are included. Unreachable tables
// stay as separate contributors (the mapping will need e.g. a union or an
// unjoined lookup).
func connectTables(adj map[string][]string, contributing map[string]struct{}) []string {
	if len(contributing) == 0 {
		return nil
	}
	names := make([]string, 0, len(contributing))
	for t := range contributing {
		names = append(names, t)
	}
	sort.Strings(names)
	result := map[string]struct{}{names[0]: {}}
	for _, t := range names[1:] {
		if _, done := result[t]; done {
			continue
		}
		path := shortestPathToSet(adj, t, result)
		if path == nil {
			result[t] = struct{}{} // unreachable: keep as island
			continue
		}
		for _, n := range path {
			result[n] = struct{}{}
		}
	}
	out := make([]string, 0, len(result))
	for t := range result {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// shortestPathToSet BFS-searches from start to any table already in the
// result set, returning the node path including start and the reached
// table, or nil if unreachable.
func shortestPathToSet(adj map[string][]string, start string, goal map[string]struct{}) []string {
	if _, ok := goal[start]; ok {
		return []string{start}
	}
	prev := map[string]string{start: ""}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if _, ok := goal[next]; ok {
				var path []string
				for n := next; n != ""; n = prev[n] {
					path = append(path, n)
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}
