package mapping

import (
	"strings"
	"testing"

	"efes/internal/core"
	"efes/internal/effort"
	"efes/internal/match"
	"efes/internal/relational"
	"efes/internal/scenario"
)

func TestTable2Reproduction(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	m := New()
	rep, err := m.AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.(*Report)
	if len(r.Connections) != 2 {
		t.Fatalf("connections = %v", r.Connections)
	}
	byTable := make(map[string]Connection)
	for _, c := range r.Connections {
		byTable[c.TargetTable] = c
	}
	// Table 2: records | 3 | 2 | yes.
	rec := byTable["records"]
	if len(rec.SourceTables) != 3 || rec.Attributes != 2 || !rec.NeedsPK {
		t.Errorf("records connection = %+v, want 3 tables, 2 attributes, PK", rec)
	}
	want := []string{"albums", "artist_credits", "artist_lists"}
	for i, tbl := range want {
		if rec.SourceTables[i] != tbl {
			t.Errorf("records tables = %v, want %v", rec.SourceTables, want)
			break
		}
	}
	// Table 2: tracks | 3 | 2 | no.
	trk := byTable["tracks"]
	if len(trk.SourceTables) != 3 || trk.Attributes != 2 || trk.NeedsPK {
		t.Errorf("tracks connection = %+v, want 3 tables, 2 attributes, no PK", trk)
	}
	if trk.ForeignKeys != 1 {
		t.Errorf("tracks FKs = %d, want 1", trk.ForeignKeys)
	}
	if r.ProblemCount() != 2 {
		t.Errorf("problem count = %d", r.ProblemCount())
	}
	if r.ModuleName() != ModuleName {
		t.Error("module name mismatch")
	}
}

func TestReportSummaryShape(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	rep, err := New().AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"Target table", "records", "tracks", "yes", "no"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestPlanTasksExample38(t *testing.T) {
	// Example 3.8: manual SQL mapping effort = 3·tables + attributes +
	// 3·PKs = (9+2+3) + (9+2+0) = 25 minutes... with the paper's
	// simpler function omitting FKs. Table 9 adds 3·FKs; tracks has one
	// FK, so the Table 9 total is 25 + 3 = 28.
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	m := New()
	rep, err := m.AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := m.PlanTasks(rep, effort.HighQuality)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("tasks = %v", tasks)
	}
	for _, task := range tasks {
		if task.Type != effort.TaskWriteMapping || task.Category != effort.CategoryMapping {
			t.Errorf("unexpected task %v", task)
		}
	}
	calc := effort.NewCalculator(effort.DefaultSettings())
	est, err := calc.Price(effort.HighQuality, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Total(); got != 28 {
		t.Errorf("mapping effort = %v, want 28 (25 per Example 3.8 + 3 for the tracks FK)", got)
	}
	// With a mapping tool (Example 3.8 variant): 2 mins per connection.
	s := effort.DefaultSettings()
	s.MappingTool = true
	est2, err := effort.NewCalculator(s).Price(effort.HighQuality, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := est2.Total(); got != 4 {
		t.Errorf("tool-assisted mapping effort = %v, want 4", got)
	}
}

func TestPlanTasksQualityIndependent(t *testing.T) {
	scn := scenario.MusicExample(scenario.SmallExampleConfig())
	m := New()
	rep, _ := m.AssessComplexity(scn)
	low, _ := m.PlanTasks(rep, effort.LowEffort)
	high, _ := m.PlanTasks(rep, effort.HighQuality)
	if len(low) != len(high) {
		t.Errorf("mapping work must not depend on quality: %d vs %d", len(low), len(high))
	}
}

func TestPlanTasksRejectsForeignReport(t *testing.T) {
	m := New()
	if _, err := m.PlanTasks(fakeReport{}, effort.LowEffort); err == nil {
		t.Error("foreign report type must be rejected")
	}
}

type fakeReport struct{}

func (fakeReport) ModuleName() string { return "fake" }
func (fakeReport) Summary() string    { return "" }
func (fakeReport) ProblemCount() int  { return 0 }

func TestIdenticalSchemasNoPKGeneration(t *testing.T) {
	// Integrating a source with the same schema and unique ids into the
	// target requires no PK generation and single-table connections.
	s := relational.NewSchema("t")
	s.MustAddTable(relational.MustTable("items",
		relational.Column{Name: "id", Type: relational.Integer},
		relational.Column{Name: "name", Type: relational.String},
	))
	s.MustAddConstraint(relational.PrimaryKey{Table: "items", Columns: []string{"id"}})
	src := relational.NewDatabase(s)
	src.MustInsert("items", 1, "x")
	tgt := relational.NewDatabase(s)
	corr := &match.Set{}
	corr.Table("items", "items")
	corr.Attr("items", "id", "items", "id")
	corr.Attr("items", "name", "items", "name")
	scn := &core.Scenario{
		Name:    "ident",
		Target:  tgt,
		Sources: []*core.Source{{Name: "src", DB: src, Correspondences: corr}},
	}
	rep, err := New().AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	conns := rep.(*Report).Connections
	if len(conns) != 1 {
		t.Fatalf("connections = %v", conns)
	}
	c := conns[0]
	if c.NeedsPK {
		t.Error("identical schema with unique id must not need PK generation")
	}
	if len(c.SourceTables) != 1 || c.Attributes != 2 {
		t.Errorf("connection = %+v", c)
	}
}

func TestMultipleSources(t *testing.T) {
	small := scenario.SmallExampleConfig()
	scn := scenario.MusicExample(small)
	// Clone the source as a second one: every target table now has two
	// connections.
	scn.Sources = append(scn.Sources, &core.Source{
		Name:            "source2",
		DB:              scn.Sources[0].DB,
		Correspondences: scn.Sources[0].Correspondences,
	})
	rep, err := New().AssessComplexity(scn)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.(*Report).Connections); got != 4 {
		t.Errorf("connections = %d, want 4 (2 tables × 2 sources)", got)
	}
}

func TestConnectTablesIslands(t *testing.T) {
	adj := map[string][]string{
		"a": {"b"},
		"b": {"a"},
	}
	got := connectTables(adj, map[string]struct{}{"a": {}, "z": {}})
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Errorf("islands = %v", got)
	}
	if got := connectTables(adj, nil); got != nil {
		t.Errorf("empty contributing = %v", got)
	}
}

func TestShortestPathToSet(t *testing.T) {
	adj := map[string][]string{
		"a": {"b"},
		"b": {"a", "c"},
		"c": {"b", "d"},
		"d": {"c"},
	}
	path := shortestPathToSet(adj, "d", map[string]struct{}{"a": {}})
	if len(path) != 4 {
		t.Errorf("path = %v", path)
	}
	if p := shortestPathToSet(adj, "d", map[string]struct{}{"d": {}}); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
	if p := shortestPathToSet(adj, "a", map[string]struct{}{"zzz": {}}); p != nil {
		t.Errorf("unreachable = %v", p)
	}
}
