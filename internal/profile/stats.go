// Package profile implements single-column data profiling: the statistics
// catalog of the paper's §5.1 (fill status, constancy, text patterns,
// character histograms, string lengths, mean, numeric histograms, value
// ranges, top-k values) plus schema reverse engineering (discovery of
// unique, not-null, primary-key, and inclusion-dependency/foreign-key
// candidates from instances, §3.1).
package profile

import (
	"math"
	"sort"
	"strings"
	"unicode"

	"efes/internal/relational"
)

// StatType identifies one of the statistics of the paper's §5.1.
type StatType string

// The statistic types collected by the profiler.
const (
	// StatFill is the fill status: share of non-NULL values castable to
	// the target type.
	StatFill StatType = "fill status"
	// StatConstancy is the inverse of Shannon's information entropy.
	StatConstancy StatType = "constancy"
	// StatTextPattern collects frequent string patterns.
	StatTextPattern StatType = "text pattern"
	// StatCharHistogram captures relative character occurrences.
	StatCharHistogram StatType = "character histogram"
	// StatStringLength is mean and standard deviation of string lengths.
	StatStringLength StatType = "string length"
	// StatMean is mean and standard deviation of numeric values.
	StatMean StatType = "mean"
	// StatHistogram is an equi-width numeric histogram.
	StatHistogram StatType = "histogram"
	// StatValueRange is the minimum and maximum numeric value.
	StatValueRange StatType = "value range"
	// StatTopK identifies the most frequent values.
	StatTopK StatType = "top-k values"
)

// ValueCount pairs a rendered value (or pattern) with its occurrence count.
type ValueCount struct {
	Value string
	Count int
}

// Dist holds a mean and standard deviation.
type Dist struct {
	Mean   float64
	StdDev float64
}

// Histogram is an equi-width histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	// Buckets holds one count per equi-width bucket.
	Buckets []int
}

// HistogramBuckets is the number of buckets used for numeric histograms.
const HistogramBuckets = 16

// TopKSize is the number of most frequent values retained.
const TopKSize = 10

// ColumnStats aggregates every statistic of one column.
type ColumnStats struct {
	// Table and Column identify the profiled attribute.
	Table, Column string
	// Type is the column's declared type.
	Type relational.Type

	// Rows is the total number of rows (values incl. NULLs).
	Rows int
	// Nulls is the number of NULL values.
	Nulls int
	// Distinct is the number of distinct non-NULL values.
	Distinct int
	// Fill is the share of non-NULL values, in [0,1].
	Fill float64
	// Constancy is 1 - normalizedEntropy: 1 for a constant column, 0
	// for all-distinct values (the inverse of Shannon's entropy, §5.1).
	Constancy float64
	// Patterns are the text patterns of string values with counts,
	// most frequent first.
	Patterns []ValueCount
	// CharHist maps characters to their relative frequency over all
	// characters of all string values.
	//
	//efes:bounded one bucket per distinct rune of the profiled column; fixed once computed
	CharHist map[rune]float64
	// StringLength is the distribution of string lengths.
	StringLength Dist
	// Mean is the distribution of numeric values.
	Mean Dist
	// NumHist is the equi-width histogram of numeric values.
	NumHist Histogram
	// Min and Max are the numeric value range.
	Min, Max float64
	// HasNumeric reports whether any numeric value was observed (Mean,
	// NumHist, Min, Max are meaningful only if true).
	HasNumeric bool
	// TopK are the most frequent values, most frequent first; ties are
	// broken by value for determinism.
	TopK []ValueCount
	// TopKCoverage is the share of non-NULL values covered by TopK.
	TopKCoverage float64
	// Approx is set if and only if the profile was computed by the
	// approximate (sketch-based) kernels; it documents the error bounds
	// of the sketched statistics. Exact profiles leave it nil, and the
	// omitempty tag keeps their JSON rendering byte-identical to the
	// pre-sketch format.
	Approx *ApproxInfo `json:",omitempty"`
}

// Column profiles one column of a database instance via the fused
// columnar kernels (bit-identical to the row path, see kernels.go).
func Column(db *relational.Database, table, column string) (*ColumnStats, error) {
	if vec := db.Vector(table, column); vec != nil {
		return FromVector(table, column, vec), nil
	}
	values, err := db.Column(table, column) // unknown table/column: error
	if err != nil {
		return nil, err
	}
	col, _ := db.Schema.Table(table).Column(column)
	return Values(table, column, col.Type, values), nil
}

// MustColumn is Column but panics on error.
func MustColumn(db *relational.Database, table, column string) *ColumnStats {
	cs, err := Column(db, table, column)
	if err != nil {
		panic(err)
	}
	return cs
}

// Values profiles a raw value slice. It is the workhorse behind Column and
// is exported so that detectors can profile derived (virtual) columns.
func Values(table, column string, typ relational.Type, values []relational.Value) *ColumnStats {
	cs := &ColumnStats{Table: table, Column: column, Type: typ, Rows: len(values)}
	counts := make(map[string]int, len(values)/4+1)
	patterns := make(map[string]int, 8)
	charCounts := make(map[rune]int, 64)
	totalChars := 0
	var lengths, numbers []float64
	for _, v := range values {
		if v == nil {
			cs.Nulls++
			continue
		}
		s := relational.FormatValue(v)
		counts[s]++
		switch x := v.(type) {
		case string:
			patterns[Pattern(x)]++
			for _, r := range x {
				charCounts[r]++
				totalChars++
			}
			lengths = append(lengths, float64(len([]rune(x))))
		case int64:
			numbers = append(numbers, float64(x))
		case float64:
			numbers = append(numbers, x)
		case bool:
			if x {
				numbers = append(numbers, 1)
			} else {
				numbers = append(numbers, 0)
			}
		}
	}
	nonNull := cs.Rows - cs.Nulls
	cs.Distinct = len(counts)
	if cs.Rows > 0 {
		cs.Fill = float64(nonNull) / float64(cs.Rows)
	}
	all := sortedCounts(counts)
	cs.Constancy = constancy(all, nonNull)
	cs.Patterns = sortedCounts(patterns)
	if totalChars > 0 {
		cs.CharHist = make(map[rune]float64, len(charCounts))
		for r, n := range charCounts {
			cs.CharHist[r] = float64(n) / float64(totalChars)
		}
	}
	cs.StringLength = distOf(lengths)
	if len(numbers) > 0 {
		cs.HasNumeric = true
		cs.Mean = distOf(numbers)
		cs.Min, cs.Max = minMax(numbers)
		cs.NumHist = histogramOf(numbers, cs.Min, cs.Max)
	}
	if len(all) > TopKSize {
		cs.TopK = all[:TopKSize]
	} else {
		cs.TopK = all
	}
	covered := 0
	for _, vc := range cs.TopK {
		covered += vc.Count
	}
	if nonNull > 0 {
		cs.TopKCoverage = float64(covered) / float64(nonNull)
	}
	return cs
}

// constancy returns 1 - H/Hmax where H is the Shannon entropy of the value
// distribution and Hmax = log2(#distinct). A constant column has
// constancy 1; a column of all-distinct values has constancy 0. It takes
// the counts as an ordered slice (sortedCounts) rather than the raw map:
// the entropy is a float sum, and summing in map order would make the
// profile — and every fit score derived from it — vary between runs.
func constancy(counts []ValueCount, nonNull int) float64 {
	if nonNull == 0 || len(counts) <= 1 {
		return 1
	}
	h := 0.0
	for _, vc := range counts {
		p := float64(vc.Count) / float64(nonNull)
		h -= p * math.Log2(p)
	}
	hmax := math.Log2(float64(nonNull))
	if hmax == 0 {
		return 1
	}
	c := 1 - h/hmax
	if c < 0 {
		return 0
	}
	return c
}

func sortedCounts(m map[string]int) []ValueCount {
	out := make([]ValueCount, 0, len(m))
	for v, n := range m {
		out = append(out, ValueCount{Value: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func distOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return Dist{Mean: mean, StdDev: math.Sqrt(ss / float64(len(xs)))}
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func histogramOf(xs []float64, lo, hi float64) Histogram {
	h := Histogram{Min: lo, Max: hi, Buckets: make([]int, HistogramBuckets)}
	width := hi - lo
	for _, x := range xs {
		b := 0
		if width > 0 {
			// Clamp on the float before converting: with ±Inf values
			// (legal float64 cell contents) the bucket expression is
			// NaN or ±Inf, and Go's float-to-int conversion of those
			// is unspecified — an unclamped int(NaN) indexed out of
			// bounds here.
			f := (x - lo) / width * float64(HistogramBuckets)
			switch {
			case math.IsNaN(f) || f < 0:
				b = 0
			case f >= HistogramBuckets:
				b = HistogramBuckets - 1
			default:
				b = int(f)
			}
		}
		h.Buckets[b]++
	}
	return h
}

// Pattern abstracts a string into a shape: runs of digits become "9",
// runs of letters become "a", whitespace becomes a single space, and any
// other character is kept literally. E.g. "4:43" -> "9:9",
// "Sweet Home Alabama" -> "a a a", "215900" -> "9".
func Pattern(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	var last rune
	for _, r := range s {
		var c rune
		switch {
		case unicode.IsDigit(r):
			c = '9'
		case unicode.IsLetter(r):
			c = 'a'
		case unicode.IsSpace(r):
			c = ' '
		default:
			c = r
		}
		if (c == '9' || c == 'a' || c == ' ') && c == last {
			continue // compress runs of the same class
		}
		b.WriteRune(c)
		last = c
	}
	return b.String()
}
