package profile

import (
	"math"
	"slices"
	"strconv"
	"strings"
	"time"

	"efes/internal/profile/sketch"
	"efes/internal/relational"
)

// This file holds the approximate profiling kernels: per-chunk mergeable
// sketches (internal/profile/sketch) instead of exact count maps and
// dense value vectors, for the out-of-core / streaming case where a
// column's distinct values or rows dwarf memory. Per chunk the kernels
// keep only bounded state — a chunk-local count map (≤ ChunkSize
// entries), a HyperLogLog, a space-saving sketch, streaming moments, and
// a mergeable histogram — and chunk summaries merge in chunk index
// order, so output is deterministic at any worker count (chunk-local
// maps are drained in sorted key order before feeding the order-
// sensitive space-saving sketch).
//
// Every approximate profile carries a non-nil Approx field stating its
// error bounds; approximate results are never silently substituted for
// exact ones (the profiler keys its caches by mode). Where a sketch
// would buy nothing — boolean columns, tiny dictionaries, the rare
// coercion fallbacks — the kernels compute the statistic exactly and
// say so with a zero bound: upgrading precision under an approx request
// is allowed, only the reverse is not.

// Approximate-mode sketch parameters. ApproxFingerprint must change
// whenever these (or the merge semantics) do, so persisted approximate
// profiles never outlive the algorithm that produced them.
const (
	approxHLLPrecision = sketch.DefaultHLLPrecision
	approxTopKCapacity = sketch.DefaultSpaceSavingCapacity
)

// ApproxFingerprint identifies the approximate-mode algorithms and
// parameters inside durable cache keys.
func ApproxFingerprint() string {
	return "hll=" + strconv.Itoa(approxHLLPrecision) +
		",ss=" + strconv.Itoa(approxTopKCapacity) +
		",hist=midpoint" + strconv.Itoa(HistogramBuckets)
}

// ApproxInfo documents the error bounds of an approximate profile. A
// zero bound means that statistic is exact even in approximate mode.
type ApproxInfo struct {
	// DistinctRelErr is the standard relative error of Distinct
	// (1.04/sqrt(2^p) for the HLL precision p in use; 0 = exact).
	DistinctRelErr float64 `json:"distinctRelErr"`
	// TopKCountErr bounds how much any TopK or Patterns count may
	// overestimate the true frequency (the space-saving N/k bound;
	// 0 = exact). Counts never underestimate a tracked value.
	TopKCountErr int `json:"topKCountErr"`
	// HLLPrecision is the HyperLogLog register exponent (0 when the
	// distinct count is exact).
	HLLPrecision int `json:"hllPrecision,omitempty"`
	// TopKCapacity is the space-saving capacity (0 when top-k is exact).
	TopKCapacity int `json:"topKCapacity,omitempty"`
	// HistogramRebinned reports that NumHist buckets were merged by
	// midpoint rebinning: a count may sit one bucket off, and the
	// histogram range may be wider than [Min, Max].
	HistogramRebinned bool `json:"histogramRebinned,omitempty"`
}

// exactApproxInfo marks a profile computed by the exact kernels under an
// approximate-mode request: every bound is zero.
func exactApproxInfo() *ApproxInfo { return &ApproxInfo{} }

// FromVectorApprox profiles a column with the sketch-based kernels,
// fanning per-chunk sketches out over workers goroutines. Deterministic
// at any worker count.
func FromVectorApprox(table, column string, vec *relational.ColumnVector, workers int) *ColumnStats {
	cs := newStats(table, column, vec.Type(), vec.Len(), vec.NullCount())
	switch vec.Type() {
	case relational.String:
		stringApproxKernel(cs, vec.Dict(), vec.Counts(), workers)
	case relational.Integer:
		intApproxKernel(cs, vec.Ints(), vec.Nulls(), workers)
	case relational.Float:
		floatApproxKernel(cs, vec.Floats(), vec.Nulls(), workers)
	case relational.Bool:
		// Two possible values: the exact kernel is already bounded.
		boolKernelSharded(cs, vec.Bools(), vec.Nulls(), workers)
		cs.Approx = exactApproxInfo()
	case relational.Time:
		timeApproxKernel(cs, vec.Times(), vec.Nulls(), workers)
	}
	return cs
}

// FromVectorCoercedApprox is FromVectorCoerced under approximate mode:
// string sources (the streaming-CSV case) coerce per dictionary entry
// into weighted sketches; every other combination is cheap enough to
// stay exact and is marked so.
func FromVectorCoercedApprox(table, column string, vec *relational.ColumnVector, typ relational.Type, workers int) (*ColumnStats, int) {
	src := vec.Type()
	if typ == src {
		return FromVectorApprox(table, column, vec, workers), 0
	}
	if src == relational.String && !impossibleCoercion(src, typ) {
		return coercedFromStringApprox(table, column, vec, typ, workers)
	}
	cs, incompatible := FromVectorCoercedSharded(table, column, vec, typ, workers)
	cs.Approx = exactApproxInfo()
	return cs, incompatible
}

// numSketches is the mergeable per-chunk summary of a numeric column.
// The heavy-hitter sketch is keyed by canonical bit pattern; keys render
// to strings only when the ≤ capacity survivors are reported, so the
// per-distinct hot path never allocates.
type numSketches struct {
	hll  *sketch.HLL
	ss   *sketch.SpaceSavingU64
	mom  *sketch.Moments
	hist *sketch.Histogram
}

func newNumSketches() numSketches {
	return numSketches{
		hll:  sketch.NewHLL(approxHLLPrecision),
		ss:   sketch.NewSpaceSavingU64(approxTopKCapacity),
		mom:  sketch.NewMoments(),
		hist: sketch.NewHistogram(HistogramBuckets),
	}
}

// renderEntries renders bit-keyed heavy hitters and restores the report
// order over the rendered values (count desc, value asc).
func renderEntries(es []sketch.EntryU64, render func(uint64) string) []sketch.Entry {
	out := make([]sketch.Entry, len(es))
	for i, e := range es {
		out[i] = sketch.Entry{Value: render(e.Key), Count: e.Count, Err: e.Err}
	}
	slices.SortFunc(out, func(a, b sketch.Entry) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Value, b.Value)
	})
	return out
}

// renderInt renders an integer heavy-hitter key (the value's two's-
// complement bits) like the exact kernels render values.
func renderInt(k uint64) string { return strconv.FormatInt(int64(k), 10) }

// renderFloat renders a float heavy-hitter key (the value's canonical
// bit pattern) like the exact kernels render values.
func renderFloat(k uint64) string {
	return strconv.FormatFloat(math.Float64frombits(k), 'g', -1, 64)
}

func (a numSketches) merge(b numSketches) {
	a.hll.Merge(b.hll)
	a.ss.Merge(b.ss)
	a.mom.Merge(b.mom)
	a.hist.Merge(b.hist)
}

// finishNumApprox fills a ColumnStats from merged numeric sketches,
// rendering the surviving heavy-hitter keys with render.
func finishNumApprox(cs *ColumnStats, s numSketches, render func(uint64) string) {
	nonNull := cs.Rows - cs.Nulls
	distinct := int(s.hll.Estimate())
	if distinct > nonNull {
		distinct = nonNull
	}
	if distinct == 0 && nonNull > 0 {
		distinct = 1
	}
	cs.Distinct = distinct
	entries := renderEntries(s.ss.Entries(), render)
	finishTopKApprox(cs, entries, nonNull)
	cs.Constancy = approxConstancy(entries, distinct, nonNull)
	if s.mom.Count() > 0 {
		cs.HasNumeric = true
		cs.Mean = Dist{Mean: s.mom.Mean(), StdDev: s.mom.StdDev()}
		cs.Min, cs.Max = s.mom.Min(), s.mom.Max()
		cs.NumHist = histFromSketch(s.hist)
	}
	cs.Approx = &ApproxInfo{
		DistinctRelErr:    s.hll.RelativeError(),
		TopKCountErr:      int(s.ss.MaxOverestimate()),
		HLLPrecision:      approxHLLPrecision,
		TopKCapacity:      approxTopKCapacity,
		HistogramRebinned: true,
	}
}

// finishTopKApprox fills TopK and its coverage from space-saving entries
// (already in (count desc, value asc) order). Coverage is clamped: the
// sketch may overestimate counts.
func finishTopKApprox(cs *ColumnStats, entries []sketch.Entry, nonNull int) {
	k := len(entries)
	if k > TopKSize {
		k = TopKSize
	}
	cs.TopK = make([]ValueCount, k)
	covered := uint64(0)
	for i := 0; i < k; i++ {
		cs.TopK[i] = ValueCount{Value: entries[i].Value, Count: int(entries[i].Count)}
		covered += entries[i].Count
	}
	if nonNull > 0 {
		cov := float64(covered) / float64(nonNull)
		if cov > 1 {
			cov = 1
		}
		cs.TopKCoverage = cov
	}
}

// approxConstancy estimates 1 - H/Hmax from the heavy-hitter counts: the
// tracked entries contribute their -p*log2(p) addends; the untracked
// remainder mass is spread uniformly over the remaining (estimated)
// distinct values — the maximum-entropy assumption, so constancy errs
// low (toward "diverse") rather than inventing structure. Clamped to
// [0, 1].
func approxConstancy(entries []sketch.Entry, distinct, nonNull int) float64 {
	if nonNull == 0 || distinct <= 1 {
		return 1
	}
	h := 0.0
	covered := uint64(0)
	used := 0
	for _, e := range entries {
		if e.Count == 0 {
			continue
		}
		p := float64(e.Count) / float64(nonNull)
		if p > 1 {
			p = 1
		}
		h -= p * math.Log2(p)
		covered += e.Count
		used++
	}
	if rem := float64(nonNull) - float64(covered); rem > 0 && distinct > used {
		remD := float64(distinct - used)
		p := rem / remD / float64(nonNull)
		if p > 0 && p <= 1 {
			h -= remD * p * math.Log2(p)
		}
	}
	hmax := math.Log2(float64(nonNull))
	if hmax <= 0 {
		return 1
	}
	c := 1 - h/hmax
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// histFromSketch converts a merged sketch histogram into the profile's
// histogram shape. The range is the sketch's bin range, which may be
// wider than the observed [min, max] after geometric growth.
func histFromSketch(h *sketch.Histogram) Histogram {
	lo, hi, ok := h.Range()
	if !ok {
		return Histogram{}
	}
	out := Histogram{Min: lo, Max: hi, Buckets: make([]int, len(h.Buckets()))}
	for i, c := range h.Buckets() {
		out.Buckets[i] = int(c)
	}
	return out
}

// intApproxKernel profiles an integer column with per-chunk sketches.
// Each chunk sorts its non-null values and feeds the sketches one
// run-length-encoded (value, count) pair per distinct value — no chunk
// count map, no per-distinct rendering — in sorted key order, so the
// order-sensitive space-saving sketch sees a deterministic stream.
//
//efes:hot
func intApproxKernel(cs *ColumnStats, ints []int64, nulls *relational.Bitmap, workers int) {
	chunks := chunkCount(len(ints))
	parts := make([]numSketches, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(ints))
		s := newNumSketches()
		vals := make([]int64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			x := ints[i]
			vals = append(vals, x)
			f := float64(x)
			s.mom.Add(f)
			s.hist.Add(f)
		}
		slices.Sort(vals)
		for i := 0; i < len(vals); {
			j := i + 1
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			s.hll.Add(sketch.HashUint64(uint64(vals[i])))
			s.ss.AddN(uint64(vals[i]), uint64(j-i))
			i = j
		}
		parts[k] = s
	})
	merged := newNumSketches()
	for _, p := range parts {
		merged.merge(p)
	}
	finishNumApprox(cs, merged, renderInt)
}

// floatApproxKernel is intApproxKernel for float columns (values keyed
// by canonicalized bit pattern, rendered like the exact kernels).
//
//efes:hot
func floatApproxKernel(cs *ColumnStats, floats []float64, nulls *relational.Bitmap, workers int) {
	chunks := chunkCount(len(floats))
	parts := make([]numSketches, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(floats))
		s := newNumSketches()
		keys := make([]uint64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			x := floats[i]
			keys = append(keys, floatKey(x))
			s.mom.Add(x)
			s.hist.Add(x)
		}
		slices.Sort(keys)
		for i := 0; i < len(keys); {
			j := i + 1
			for j < len(keys) && keys[j] == keys[i] {
				j++
			}
			s.hll.Add(sketch.HashUint64(keys[i]))
			s.ss.AddN(keys[i], uint64(j-i))
			i = j
		}
		parts[k] = s
	})
	merged := newNumSketches()
	for _, p := range parts {
		merged.merge(p)
	}
	finishNumApprox(cs, merged, renderFloat)
}

// timeApproxKernel profiles a timestamp column: distinct and top-k over
// the rendered values via sketches; like the exact kernel, timestamps
// contribute no numeric or string statistics.
//
//efes:hot
func timeApproxKernel(cs *ColumnStats, times []time.Time, nulls *relational.Bitmap, workers int) {
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(times))
	type part struct {
		hll *sketch.HLL
		ss  *sketch.SpaceSaving
	}
	parts := make([]part, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(times))
		cnt := make(map[string]int, 1024)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			cnt[times[i].Format(time.RFC3339)]++
		}
		keys := make([]string, 0, len(cnt))
		for s := range cnt {
			keys = append(keys, s)
		}
		slices.Sort(keys)
		p := part{hll: sketch.NewHLL(approxHLLPrecision), ss: sketch.NewSpaceSaving(approxTopKCapacity)}
		for _, s := range keys {
			p.hll.Add(sketch.HashString(s))
			p.ss.AddN(s, uint64(cnt[s]))
		}
		parts[k] = p
	})
	hll := sketch.NewHLL(approxHLLPrecision)
	ss := sketch.NewSpaceSaving(approxTopKCapacity)
	for _, p := range parts {
		hll.Merge(p.hll)
		ss.Merge(p.ss)
	}
	distinct := int(hll.Estimate())
	if distinct > nonNull {
		distinct = nonNull
	}
	if distinct == 0 && nonNull > 0 {
		distinct = 1
	}
	cs.Distinct = distinct
	entries := ss.Entries()
	finishTopKApprox(cs, entries, nonNull)
	cs.Constancy = approxConstancy(entries, distinct, nonNull)
	cs.Approx = &ApproxInfo{
		DistinctRelErr: hll.RelativeError(),
		TopKCountErr:   int(ss.MaxOverestimate()),
		HLLPrecision:   approxHLLPrecision,
		TopKCapacity:   approxTopKCapacity,
	}
}

// stringPartialApprox is one dictionary shard's sketched contribution.
type stringPartialApprox struct {
	topk       *sketch.SpaceSaving
	patterns   *sketch.SpaceSaving
	lenMom     *sketch.Moments
	charCounts map[rune]int
	totalChars int
	distinct   int
}

// stringApproxKernel profiles a string column from its dictionary. The
// dictionary is in memory, so the distinct count stays exact; top-k and
// patterns go through bounded space-saving sketches, string lengths
// through weighted streaming moments, and the character histogram stays
// exact (bounded by the alphabet). Dictionary order is deterministic, so
// so is every sketch.
//
//efes:hot
func stringApproxKernel(cs *ColumnStats, strs []string, occ []int, workers int) {
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(strs))
	parts := make([]stringPartialApprox, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(strs))
		p := stringPartialApprox{
			topk:       sketch.NewSpaceSaving(approxTopKCapacity),
			patterns:   sketch.NewSpaceSaving(approxTopKCapacity),
			lenMom:     sketch.NewMoments(),
			charCounts: make(map[rune]int),
		}
		for c := lo; c < hi; c++ {
			n := occ[c]
			if n == 0 {
				continue
			}
			p.distinct++
			p.topk.AddN(strs[c], uint64(n))
			p.patterns.AddN(Pattern(strs[c]), uint64(n))
			rl := 0
			for _, r := range strs[c] {
				p.charCounts[r] += n
				p.totalChars += n
				rl++
			}
			p.lenMom.AddWeighted(float64(rl), uint64(n))
		}
		parts[k] = p
	})
	topk := sketch.NewSpaceSaving(approxTopKCapacity)
	patterns := sketch.NewSpaceSaving(approxTopKCapacity)
	lenMom := sketch.NewMoments()
	charCounts := make(map[rune]int)
	totalChars, distinct := 0, 0
	for _, p := range parts {
		topk.Merge(p.topk)
		patterns.Merge(p.patterns)
		lenMom.Merge(p.lenMom)
		distinct += p.distinct
		totalChars += p.totalChars
		for r, n := range p.charCounts {
			charCounts[r] += n
		}
	}
	cs.Distinct = distinct
	pents := patterns.Entries()
	cs.Patterns = make([]ValueCount, len(pents))
	for i, e := range pents {
		cs.Patterns[i] = ValueCount{Value: e.Value, Count: int(e.Count)}
	}
	if totalChars > 0 {
		cs.CharHist = make(map[rune]float64, len(charCounts))
		for r, n := range charCounts {
			cs.CharHist[r] = float64(n) / float64(totalChars)
		}
	}
	if lenMom.Count() > 0 {
		cs.StringLength = Dist{Mean: lenMom.Mean(), StdDev: lenMom.StdDev()}
	}
	entries := topk.Entries()
	finishTopKApprox(cs, entries, nonNull)
	cs.Constancy = approxConstancy(entries, distinct, nonNull)
	cs.Approx = &ApproxInfo{
		TopKCountErr: int(topk.MaxOverestimate()),
		TopKCapacity: approxTopKCapacity,
	}
}

// coercedFromStringApprox coerces per distinct dictionary entry — the
// streaming-CSV case the approximate mode exists for — and feeds
// weighted sketches in dictionary order.
//
//efes:hot
func coercedFromStringApprox(table, column string, vec *relational.ColumnVector, typ relational.Type, workers int) (*ColumnStats, int) {
	dict, occ := vec.Dict(), vec.Counts()
	dictChunks := chunkCount(len(dict))
	bad := make([]int, dictChunks)

	switch typ {
	case relational.Integer, relational.Float:
		parts := make([]numSketches, dictChunks)
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			s := newNumSketches()
			for c := lo; c < hi; c++ {
				n := occ[c]
				if n == 0 {
					continue
				}
				var f float64
				var key uint64
				if typ == relational.Integer {
					v, err := relational.ParseInt(dict[c])
					if err != nil {
						bad[k] += n
						continue
					}
					f, key = float64(v), uint64(v)
				} else {
					v, err := relational.ParseFloat(dict[c])
					if err != nil {
						bad[k] += n
						continue
					}
					f, key = v, floatKey(v)
				}
				s.hll.Add(sketch.HashUint64(key))
				s.ss.AddN(key, uint64(n))
				s.mom.AddWeighted(f, uint64(n))
				s.hist.AddN(f, uint64(n))
			}
			parts[k] = s
		})
		incompatible := sumInts(bad)
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		merged := newNumSketches()
		for _, p := range parts {
			merged.merge(p)
		}
		render := renderInt
		if typ == relational.Float {
			render = renderFloat
		}
		finishNumApprox(cs, merged, render)
		return cs, incompatible
	default:
		// Bool and Time targets have tiny (bool) or render-bounded
		// (time) value spaces; the exact sharded kernel is already
		// memory-bounded enough, and precision upgrades are allowed.
		cs, incompatible := FromVectorCoercedSharded(table, column, vec, typ, workers)
		cs.Approx = exactApproxInfo()
		return cs, incompatible
	}
}
