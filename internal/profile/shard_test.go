package profile

import (
	"math/rand"
	"strconv"
	"testing"

	"efes/internal/relational"
)

// The sharded exact kernels must be bit-identical to the single-pass
// kernels (and therefore to the seed row path) at every worker count.
// The suites below re-run the kernels_test.go property grid through
// FromVectorSharded/FromVectorCoercedSharded, then add multi-chunk
// columns (> relational.ChunkSize rows, and > ChunkSize distinct values
// for the dictionary-sharded string kernel) that the small grid cannot
// reach, plus mutation sequences that cross chunk boundaries.

var shardWorkerCounts = []int{1, 2, 3, 8}

func TestShardedBitIdenticalToRowPath(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, typ := range allTypes {
			for _, n := range []int{0, 1, 7, 400} {
				db := randomDB(t, rng, typ, n)
				values := db.MustColumn("t", "c")
				vec := db.Vector("t", "c")
				for _, workers := range shardWorkerCounts {
					ctx := typ.String() + "/raw/w" + strconv.Itoa(workers)
					statsEqual(t, ctx, Values("t", "c", typ, values), FromVectorSharded("t", "c", vec, workers))
					for _, dst := range allTypes {
						want, wantInc := oracleCoerced("t", "c", dst, values)
						got, gotInc := FromVectorCoercedSharded("t", "c", vec, dst, workers)
						cctx := typ.String() + "->" + dst.String() + "/w" + strconv.Itoa(workers)
						if wantInc != gotInc {
							t.Errorf("%s: incompatible: want %d, got %d", cctx, wantInc, gotInc)
						}
						statsEqual(t, cctx, want, got)
					}
				}
			}
		}
	}
}

// TestShardedMultiChunk crosses the chunk boundary: > ChunkSize rows, so
// the per-chunk partial merge actually runs. The single-pass kernels are
// the oracle here (they are themselves property-tested against the row
// path, and the row path over 66k adversarial values is slow).
func TestShardedMultiChunk(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk columns are slow to build")
	}
	const n = relational.ChunkSize + 1337
	rng := rand.New(rand.NewSource(42))
	for _, typ := range allTypes {
		db := randomDB(t, rng, typ, n)
		vec := db.Vector("t", "c")
		want := FromVector("t", "c", vec)
		for _, workers := range shardWorkerCounts {
			ctx := typ.String() + "/multichunk/w" + strconv.Itoa(workers)
			statsEqual(t, ctx, want, FromVectorSharded("t", "c", vec, workers))
		}
		// One coercion per source type keeps the runtime sane while
		// still exercising every sharded coerced kernel.
		var dst relational.Type
		switch typ {
		case relational.String:
			dst = relational.Integer // coercedFromStringSharded
		case relational.Integer:
			dst = relational.String // intToStringSharded + sharded string kernel
		case relational.Float:
			dst = relational.Integer // floatToIntSharded
		case relational.Bool:
			dst = relational.String
		default:
			dst = relational.String // coercedFallback
		}
		wantC, wantInc := FromVectorCoerced("t", "c", vec, dst)
		for _, workers := range shardWorkerCounts {
			gotC, gotInc := FromVectorCoercedSharded("t", "c", vec, dst, workers)
			cctx := typ.String() + "->" + dst.String() + "/multichunk/w" + strconv.Itoa(workers)
			if wantInc != gotInc {
				t.Errorf("%s: incompatible: want %d, got %d", cctx, wantInc, gotInc)
			}
			statsEqual(t, cctx, wantC, gotC)
		}
	}
}

// TestShardedMultiChunkDictionary drives the dictionary-sharded string
// kernel across shard boundaries: more than ChunkSize distinct values,
// so the dict fan-out, the per-shard top-k survivor merge, and the
// disjoint runeLens writes all span multiple shards.
func TestShardedMultiChunkDictionary(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk dictionaries are slow to build")
	}
	const n = relational.ChunkSize + 1000
	s := relational.NewSchema("prop")
	tab, err := relational.NewTable("t", relational.Column{Name: "c", Type: relational.Integer})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := s.AddTable(tab); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	db := relational.NewDatabase(s)
	for i := 0; i < n; i++ {
		db.MustInsert("t", int64(i)) // all distinct: derived dict > ChunkSize entries
	}
	vec := db.Vector("t", "c")
	want := FromVector("t", "c", vec)
	wantS, _ := FromVectorCoerced("t", "c", vec, relational.String)
	for _, workers := range shardWorkerCounts {
		w := strconv.Itoa(workers)
		statsEqual(t, "int/alldistinct/w"+w, want, FromVectorSharded("t", "c", vec, workers))
		gotS, inc := FromVectorCoercedSharded("t", "c", vec, relational.String, workers)
		if inc != 0 {
			t.Errorf("int->string: unexpected incompatible %d", inc)
		}
		statsEqual(t, "int->string/alldistinct/w"+w, wantS, gotS)
	}
}

// TestShardedAfterMutations mutates a multi-chunk column through the
// incremental maintenance path — including deletes that shift rows
// across the chunk boundary — and requires the sharded kernels to agree
// with the row path bit for bit afterwards.
func TestShardedAfterMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk columns are slow to build")
	}
	rng := rand.New(rand.NewSource(99))
	for _, typ := range []relational.Type{relational.Integer, relational.String} {
		db := randomDB(t, rng, typ, relational.ChunkSize+300)
		if db.Vector("t", "c") == nil {
			t.Fatal("Vector returned nil")
		}
		for step := 0; step < 25; step++ {
			n := db.NumRows("t")
			switch op := rng.Intn(4); {
			case op == 0 || n == 0:
				db.MustInsert("t", randomValue(rng, typ))
			case op == 1:
				if err := db.Update("t", rng.Intn(n), "c", randomValue(rng, typ)); err != nil {
					t.Fatalf("Update: %v", err)
				}
			case op == 2:
				db.Delete("t", rng.Intn(n))
			default:
				db.Delete("t", relational.ChunkSize-2+rng.Intn(5)) // straddle the boundary
			}
		}
		values := db.MustColumn("t", "c")
		vec := db.Vector("t", "c")
		want := Values("t", "c", typ, values)
		for _, workers := range shardWorkerCounts {
			ctx := typ.String() + "/mutated/w" + strconv.Itoa(workers)
			statsEqual(t, ctx, want, FromVectorSharded("t", "c", vec, workers))
		}
	}
}
