// Package sketch implements the mergeable streaming summaries behind the
// profiler's approximate mode: a HyperLogLog distinct-count sketch, a
// space-saving heavy-hitter sketch, streaming moments (count/mean/
// variance/min/max), and a mergeable equi-width histogram.
//
// Every sketch exposes an Add (or weighted AddN) and a Merge. Merge is
// deterministic and — property-tested in this package — commutative and
// associative, so per-chunk sketches built by parallel workers collapse
// to the same bytes regardless of worker count as long as the final
// reduction happens in chunk index order (and for HLL and moments the
// order does not matter at all). Nothing here reads the clock or a
// global RNG: hashing is FNV-1a/splitmix64, so sketches are reproducible
// across processes and appear in persisted cache entries safely.
//
// Error bounds (documented per type, surfaced to clients through
// profile.ApproxInfo):
//
//   - HLL with precision p has standard relative error 1.04/sqrt(2^p);
//     the default p=14 (16384 registers, 16 KiB) gives ~0.81%.
//   - SpaceSaving with capacity k bounds each reported count's
//     overestimate by N/k (N = total weight); every value with true
//     frequency > N/k is guaranteed to be in the sketch.
//   - Moments are exact for count/min/max and algebraically exact for
//     mean/variance up to float round-off (Welford/Chan merging).
//   - Histogram merging rebins by bucket midpoint when ranges differ;
//     a merged count can land one bucket off, bounded by half a source
//     bucket width.
package sketch

// fnv1a64 is the 64-bit FNV-1a hash of s. Inlined here (rather than
// hash/fnv) to keep the per-value path allocation-free.
//
//efes:hot
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer that turns
// structured integer inputs (row values, float bit patterns) into
// uniformly distributed hash values for the sketches.
//
//efes:hot
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString returns the sketch hash of a string value.
func HashString(s string) uint64 { return mix64(fnv1a64(s)) }

// HashUint64 returns the sketch hash of an integer-like value (int64
// bits, float bit patterns, bool as 0/1).
func HashUint64(x uint64) uint64 { return mix64(x) }
