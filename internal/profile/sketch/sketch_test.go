package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// The merge-law suites: for each sketch, Merge must be commutative and
// associative (exactly for HLL; for SpaceSaving including the capacity
// trim; for Moments and Histogram up to float round-off, checked with a
// tolerance), and merging an empty sketch must be an identity.

// --- HLL ---

func hllFrom(vals []uint64) *HLL {
	h := NewHLL(DefaultHLLPrecision)
	for _, v := range vals {
		h.Add(HashUint64(v))
	}
	return h
}

func splitThree(rng *rand.Rand, n int) (a, b, c []uint64) {
	for i := 0; i < n; i++ {
		v := rng.Uint64() % uint64(1+n/2) // force overlap between parts
		switch rng.Intn(3) {
		case 0:
			a = append(a, v)
		case 1:
			b = append(b, v)
		default:
			c = append(c, v)
		}
	}
	return
}

func TestHLLMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a, b, c := splitThree(rng, 3000)
		// Commutativity: a+b == b+a, register for register.
		ab := hllFrom(a)
		ab.Merge(hllFrom(b))
		ba := hllFrom(b)
		ba.Merge(hllFrom(a))
		if !reflect.DeepEqual(ab.regs, ba.regs) {
			t.Fatalf("trial %d: HLL merge not commutative", trial)
		}
		// Associativity: (a+b)+c == a+(b+c).
		abc1 := hllFrom(a)
		abc1.Merge(hllFrom(b))
		abc1.Merge(hllFrom(c))
		bc := hllFrom(b)
		bc.Merge(hllFrom(c))
		abc2 := hllFrom(a)
		abc2.Merge(bc)
		if !reflect.DeepEqual(abc1.regs, abc2.regs) {
			t.Fatalf("trial %d: HLL merge not associative", trial)
		}
		// Identity: merging an empty sketch changes nothing; merged
		// streams equal the sketch of the concatenated stream.
		whole := hllFrom(append(append(append([]uint64{}, a...), b...), c...))
		abc1.Merge(NewHLL(DefaultHLLPrecision))
		if !reflect.DeepEqual(abc1.regs, whole.regs) {
			t.Fatalf("trial %d: merged HLL differs from single-stream HLL", trial)
		}
	}
}

func TestHLLErrorBounds(t *testing.T) {
	// Adversarial cardinalities: tiny (linear-counting range), around
	// the linear-counting/estimator crossover (~2.5m = 40960 at p=14),
	// and well past it. The standard error is 1.04/sqrt(m); we allow
	// 4 sigma so the test is deterministic-seed-stable but still
	// catches an implementation off by a constant factor.
	h := NewHLL(DefaultHLLPrecision)
	tol := 4 * h.RelativeError()
	for _, n := range []uint64{0, 1, 2, 10, 100, 1000, 16384, 40960, 100000, 1000000} {
		h := NewHLL(DefaultHLLPrecision)
		for v := uint64(0); v < n; v++ {
			h.Add(HashUint64(v))
			h.Add(HashUint64(v)) // duplicates must not inflate
		}
		got := float64(h.Estimate())
		want := float64(n)
		if n == 0 {
			if got != 0 {
				t.Fatalf("empty HLL estimate = %v, want 0", got)
			}
			continue
		}
		if relErr := math.Abs(got-want) / want; relErr > tol {
			t.Errorf("n=%d: estimate %v, relative error %.4f > %.4f", n, got, relErr, tol)
		}
	}
}

func TestHLLPrecisionClamp(t *testing.T) {
	if got := NewHLL(0).Precision(); got != 4 {
		t.Fatalf("precision clamp low: got %d, want 4", got)
	}
	if got := NewHLL(40).Precision(); got != 18 {
		t.Fatalf("precision clamp high: got %d, want 18", got)
	}
}

// --- SpaceSaving ---

func ssFrom(capacity int, vals []string) *SpaceSaving {
	s := NewSpaceSaving(capacity)
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

func zipfStrings(rng *rand.Rand, n, universe int) []string {
	z := rand.NewZipf(rng, 1.3, 1.0, uint64(universe-1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%04d", z.Uint64())
	}
	return out
}

func TestSpaceSavingMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const capacity = 16
	for trial := 0; trial < 20; trial++ {
		stream := zipfStrings(rng, 2000, 400)
		third := len(stream) / 3
		a, b, c := stream[:third], stream[third:2*third], stream[2*third:]
		ab := ssFrom(capacity, a)
		ab.Merge(ssFrom(capacity, b))
		ba := ssFrom(capacity, b)
		ba.Merge(ssFrom(capacity, a))
		if !reflect.DeepEqual(ab.Entries(), ba.Entries()) {
			t.Fatalf("trial %d: space-saving merge not commutative:\n%v\nvs\n%v", trial, ab.Entries(), ba.Entries())
		}
		if ab.Total() != ba.Total() {
			t.Fatalf("trial %d: totals diverge: %d vs %d", trial, ab.Total(), ba.Total())
		}
		// Associativity holds up to the capacity trim (intermediate
		// trims may shed different tie-region entries), so the law is
		// checked on what the sketch guarantees: identical totals, and
		// identical entries above the N/k noise floor, with the
		// count bracket holding against ground truth in both orders.
		truth := map[string]uint64{}
		for _, v := range stream {
			truth[v]++
		}
		abc1 := ssFrom(capacity, a)
		abc1.Merge(ssFrom(capacity, b))
		abc1.Merge(ssFrom(capacity, c))
		bc := ssFrom(capacity, b)
		bc.Merge(ssFrom(capacity, c))
		abc2 := ssFrom(capacity, a)
		abc2.Merge(bc)
		if abc1.Total() != abc2.Total() {
			t.Fatalf("trial %d: association orders disagree on total: %d vs %d", trial, abc1.Total(), abc2.Total())
		}
		threshold := abc1.Total() / uint64(capacity)
		heavy := func(s *SpaceSaving) []Entry {
			var out []Entry
			for _, e := range s.Entries() {
				if e.Count > threshold {
					out = append(out, e)
				}
			}
			return out
		}
		if !reflect.DeepEqual(heavy(abc1), heavy(abc2)) {
			t.Fatalf("trial %d: association orders disagree above the N/k floor:\n%v\nvs\n%v", trial, heavy(abc1), heavy(abc2))
		}
		for _, s := range []*SpaceSaving{abc1, abc2} {
			got := map[string]Entry{}
			for _, e := range s.Entries() {
				got[e.Value] = e
			}
			for v, f := range truth {
				if f > threshold {
					e, ok := got[v]
					if !ok {
						t.Fatalf("trial %d: heavy hitter %q lost under some association order", trial, v)
					}
					if e.Count < f || e.Count > f+e.Err {
						t.Fatalf("trial %d: bracket violated for %q: count %d err %d true %d", trial, v, e.Count, e.Err, f)
					}
				}
			}
		}
		// Identity: merging an empty sketch changes nothing.
		before := abc1.Entries()
		abc1.Merge(NewSpaceSaving(capacity))
		if !reflect.DeepEqual(before, abc1.Entries()) {
			t.Fatalf("trial %d: merging empty sketch changed entries", trial)
		}
	}
}

func TestSpaceSavingSupersetGuarantee(t *testing.T) {
	// Every value with true frequency > N/k must be present, and its
	// reported count must bracket the truth: true ≤ Count ≤ true + Err.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		capacity := 8 + rng.Intn(24)
		stream := zipfStrings(rng, 5000, 2000)
		truth := map[string]uint64{}
		for _, v := range stream {
			truth[v]++
		}
		s := ssFrom(capacity, stream)
		got := map[string]Entry{}
		for _, e := range s.Entries() {
			got[e.Value] = e
		}
		if len(got) > capacity {
			t.Fatalf("trial %d: %d entries exceed capacity %d", trial, len(got), capacity)
		}
		threshold := s.Total() / uint64(capacity)
		for v, f := range truth {
			e, ok := got[v]
			if f > threshold && !ok {
				t.Errorf("trial %d: heavy hitter %q (freq %d > N/k %d) missing", trial, v, f, threshold)
				continue
			}
			if ok {
				if e.Count < f {
					t.Errorf("trial %d: %q count %d underestimates true %d", trial, v, e.Count, f)
				}
				if e.Count > f+e.Err {
					t.Errorf("trial %d: %q count %d exceeds true %d + err %d", trial, v, e.Count, f, e.Err)
				}
				if e.Count > f+s.MaxOverestimate() {
					t.Errorf("trial %d: %q overestimate beyond N/k bound", trial, v)
				}
			}
		}
	}
}

func TestSpaceSavingWeightedEqualsRepeated(t *testing.T) {
	a := NewSpaceSaving(8)
	b := NewSpaceSaving(8)
	weights := map[string]uint64{"x": 5, "y": 3, "z": 9, "w": 1}
	for _, v := range []string{"x", "y", "z", "w"} {
		a.AddN(v, weights[v])
		for i := uint64(0); i < weights[v]; i++ {
			b.Add(v)
		}
	}
	if !reflect.DeepEqual(a.Entries(), b.Entries()) {
		t.Fatalf("weighted add diverges from repeated add:\n%v\nvs\n%v", a.Entries(), b.Entries())
	}
}

// --- Moments ---

func momentsFrom(vals []float64) *Moments {
	m := NewMoments()
	for _, x := range vals {
		m.Add(x)
	}
	return m
}

func momentsClose(a, b *Moments) bool {
	if a.Count() != b.Count() || a.Min() != b.Min() || a.Max() != b.Max() {
		return false
	}
	const tol = 1e-9
	closeEnough := func(x, y float64) bool {
		d := math.Abs(x - y)
		return d <= tol || d <= tol*math.Max(math.Abs(x), math.Abs(y))
	}
	return closeEnough(a.Mean(), b.Mean()) && closeEnough(a.StdDev(), b.StdDev())
}

func TestMomentsMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		mk := func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = rng.NormFloat64()*1e3 + 1e6 // offset stresses cancellation
			}
			return out
		}
		a, b, c := mk(100+rng.Intn(400)), mk(100+rng.Intn(400)), mk(100+rng.Intn(400))
		ab := momentsFrom(a)
		ab.Merge(momentsFrom(b))
		ba := momentsFrom(b)
		ba.Merge(momentsFrom(a))
		if !momentsClose(ab, ba) {
			t.Fatalf("trial %d: moments merge not commutative: %+v vs %+v", trial, ab, ba)
		}
		abc1 := momentsFrom(a)
		abc1.Merge(momentsFrom(b))
		abc1.Merge(momentsFrom(c))
		bc := momentsFrom(b)
		bc.Merge(momentsFrom(c))
		abc2 := momentsFrom(a)
		abc2.Merge(bc)
		if !momentsClose(abc1, abc2) {
			t.Fatalf("trial %d: moments merge not associative: %+v vs %+v", trial, abc1, abc2)
		}
		whole := momentsFrom(append(append(append([]float64{}, a...), b...), c...))
		if !momentsClose(abc1, whole) {
			t.Fatalf("trial %d: merged moments diverge from single stream: %+v vs %+v", trial, abc1, whole)
		}
		abc1.Merge(NewMoments())
		if !momentsClose(abc1, abc2) {
			t.Fatalf("trial %d: merging empty moments changed the summary", trial)
		}
	}
}

func TestMomentsMatchTwoPass(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	m := momentsFrom(vals)
	var sum float64
	for _, x := range vals {
		sum += x
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, x := range vals {
		ss += (x - mean) * (x - mean)
	}
	wantSD := math.Sqrt(ss / float64(len(vals)))
	if math.Abs(m.Mean()-mean) > 1e-12 {
		t.Fatalf("mean %v, want %v", m.Mean(), mean)
	}
	if math.Abs(m.StdDev()-wantSD) > 1e-12 {
		t.Fatalf("stddev %v, want %v", m.StdDev(), wantSD)
	}
	if m.Min() != 1 || m.Max() != 9 {
		t.Fatalf("min/max %v/%v, want 1/9", m.Min(), m.Max())
	}
}

// --- Histogram ---

func histFrom(buckets int, vals []float64) *Histogram {
	h := NewHistogram(buckets)
	for _, x := range vals {
		h.Add(x)
	}
	return h
}

func histTotal(h *Histogram) uint64 {
	var n uint64
	for _, c := range h.Buckets() {
		n += c
	}
	return n
}

func TestHistogramMergePreservesMassAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		mk := func(n int, lo, hi float64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = lo + rng.Float64()*(hi-lo)
			}
			return out
		}
		a := mk(200, -50, 10)
		b := mk(300, 0, 1000)
		ha := histFrom(16, a)
		hb := histFrom(16, b)
		ha.Merge(hb)
		if ha.Count() != 500 {
			t.Fatalf("trial %d: merged count %d, want 500", trial, ha.Count())
		}
		if histTotal(ha) != 500 {
			t.Fatalf("trial %d: merged bucket mass %d, want 500", trial, histTotal(ha))
		}
		lo, hi, ok := ha.Range()
		if !ok || lo > -49 || hi < 900 {
			t.Fatalf("trial %d: merged range [%v, %v] does not span sources", trial, lo, hi)
		}
		// Commutativity of the merged bytes.
		hb2 := histFrom(16, b)
		hb2.Merge(histFrom(16, a))
		if !reflect.DeepEqual(ha.Buckets(), hb2.Buckets()) {
			t.Fatalf("trial %d: histogram merge not commutative", trial)
		}
		// Identity.
		before := append([]uint64{}, ha.Buckets()...)
		ha.Merge(NewHistogram(16))
		if !reflect.DeepEqual(before, ha.Buckets()) {
			t.Fatalf("trial %d: merging empty histogram changed buckets", trial)
		}
	}
}

func TestHistogramNonFinite(t *testing.T) {
	h := histFrom(8, []float64{1, 2, math.NaN(), math.Inf(1), math.Inf(-1), 3})
	if h.Count() != 6 {
		t.Fatalf("count %d, want 6", h.Count())
	}
	if histTotal(h) != 3 {
		t.Fatalf("finite bucket mass %d, want 3", histTotal(h))
	}
	lo, hi, ok := h.Range()
	if !ok || lo != 1 || hi != 3 {
		t.Fatalf("range [%v, %v] ok=%v, want [1, 3]", lo, hi, ok)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := histFrom(8, []float64{42, 42, 42})
	lo, hi, ok := h.Range()
	if !ok || lo != 42 || hi != 42 {
		t.Fatalf("degenerate range [%v, %v] ok=%v", lo, hi, ok)
	}
	if histTotal(h) != 3 {
		t.Fatalf("mass %d, want 3", histTotal(h))
	}
}
