package sketch

import "math"

// Histogram is a mergeable equi-width histogram over a fixed bucket
// count. Each sketch tracks its own [min, max] range; merging a sketch
// with a different range re-bins the narrower histogram's counts by
// bucket midpoint into the wider range. Rebinned counts can land one
// bucket off, bounded by half the source bucket width — the documented
// approximation of the profiler's approximate mode (the exact mode
// builds its histogram from the merged raw values instead).
//
// Non-finite observations (NaN, ±Inf) are counted but excluded from the
// range, matching the exact kernels' histogramOf clamping.
type Histogram struct {
	buckets   []uint64 //efes:bounded fixed bucket count chosen at construction
	lo, hi    float64
	nonFinite uint64
	n         uint64
}

// NewHistogram returns an empty histogram with the given bucket count
// (clamped to at least 1).
func NewHistogram(buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	return &Histogram{buckets: make([]uint64, buckets), lo: math.Inf(1), hi: math.Inf(-1)}
}

// Count returns the number of observed values (including non-finite).
func (h *Histogram) Count() uint64 { return h.n }

// Range returns the finite observation range; ok is false when no
// finite value has been observed.
func (h *Histogram) Range() (lo, hi float64, ok bool) {
	return h.lo, h.hi, h.lo <= h.hi
}

// Buckets returns the bucket counts over Range (read-only view).
func (h *Histogram) Buckets() []uint64 { return h.buckets }

// Add observes one value, growing the range geometrically when x falls
// outside it (so a sorted stream costs O(log spread) rebins, not O(n)).
//
//efes:hot
func (h *Histogram) Add(x float64) {
	h.AddN(x, 1)
}

// AddN observes x with weight n.
func (h *Histogram) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	h.n += n
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.nonFinite += n
		return
	}
	if h.lo > h.hi { // first finite value
		h.lo, h.hi = x, x
		h.buckets[0] += n
		return
	}
	if x < h.lo || x > h.hi {
		nlo, nhi := h.lo, h.hi
		width := nhi - nlo
		if width == 0 {
			width = 1
		}
		for x < nlo {
			nlo -= width
			width *= 2
		}
		width = nhi - nlo
		if width == 0 {
			width = 1
		}
		for x > nhi {
			nhi += width
			width *= 2
		}
		h.rebin(nlo, nhi)
	}
	h.buckets[h.bucketOf(x)] += n
}

// bucketOf returns the bucket index of a finite x within [lo, hi].
func (h *Histogram) bucketOf(x float64) int {
	if h.hi == h.lo {
		return 0
	}
	i := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// rebin stretches the histogram to the new range, reassigning existing
// counts by bucket midpoint.
func (h *Histogram) rebin(nlo, nhi float64) {
	old := h.buckets
	olo, ohi := h.lo, h.hi
	h.buckets = make([]uint64, len(old))
	h.lo, h.hi = nlo, nhi
	ow := (ohi - olo) / float64(len(old))
	for i, c := range old {
		if c == 0 {
			continue
		}
		mid := olo + ow*(float64(i)+0.5)
		if ohi == olo {
			mid = olo
		}
		h.buckets[h.bucketOf(mid)] += c
	}
}

// Merge folds other into h. The merged range is the union of both
// ranges; both sides' counts are rebinned into it by midpoint.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if len(other.buckets) != len(h.buckets) {
		panic("sketch: merging histograms of different bucket counts")
	}
	h.n += other.n
	h.nonFinite += other.nonFinite
	if other.lo > other.hi { // other holds no finite values
		return
	}
	if h.lo > h.hi { // h holds no finite values: adopt other's bins
		h.lo, h.hi = other.lo, other.hi
		copy(h.buckets, other.buckets)
		return
	}
	nlo, nhi := h.lo, h.hi
	if other.lo < nlo {
		nlo = other.lo
	}
	if other.hi > nhi {
		nhi = other.hi
	}
	if nlo != h.lo || nhi != h.hi {
		h.rebin(nlo, nhi)
	}
	ow := (other.hi - other.lo) / float64(len(other.buckets))
	for i, c := range other.buckets {
		if c == 0 {
			continue
		}
		mid := other.lo + ow*(float64(i)+0.5)
		if other.hi == other.lo {
			mid = other.lo
		}
		h.buckets[h.bucketOf(mid)] += c
	}
}
