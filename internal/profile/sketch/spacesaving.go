package sketch

import (
	"cmp"
	"sort"
)

// DefaultSpaceSavingCapacity is the heavy-hitter capacity used by the
// profiler: with capacity k over total weight N, every reported count
// overestimates its true frequency by at most N/k, and any value with
// true frequency above N/k is guaranteed to survive in the sketch —
// comfortable for the profiler's top-10 over 64k-row chunks.
const DefaultSpaceSavingCapacity = 256

// ssCore is the Metwally et al. space-saving heavy-hitter sketch over
// any ordered key type: a bounded set of value → (count, err) counters
// where err bounds how much count may overestimate. Eviction and
// trimming are deterministic (min count first, ties broken by the
// larger value), so two sketches fed the same multiset in any order
// hold the same entries.
//
// The counters live in slot-stable storage with an indexed min-heap of
// slot ids on top, ordered by that same (count asc, value desc)
// relation: the eviction victim is always the root, making addN
// O(log capacity), and — because the heap holds int32 slot ids, not the
// nodes themselves — sift swaps touch only two int32 slices, never the
// value→slot map. On high-cardinality streams nearly every add evicts
// and sifts root-to-leaf, so keeping map writes off that path is the
// difference between the sketch being faster or slower than the exact
// count map it replaces. The relation is a strict total order (values
// are unique), so the root is the unique minimum whatever the heap's
// internal layout, and behavior is layout-independent.
type ssCore[K cmp.Ordered] struct {
	cap   int
	total uint64      //efes:bounded scalar total weight
	idx   map[K]int32 //efes:bounded at most cap entries by construction
	nodes []ssNode[K] //efes:bounded at most cap entries by construction
	heap  []int32     //efes:bounded at most cap entries by construction
	pos   []int32     //efes:bounded at most cap entries by construction
}

// ssNode is one tracked counter; nodes[slot] never moves while the
// value stays tracked — only the heap's slot ids are reordered.
type ssNode[K cmp.Ordered] struct {
	value K
	count uint64
	err   uint64 // count may overestimate the true frequency by up to err
}

func newSSCore[K cmp.Ordered](capacity int) ssCore[K] {
	if capacity < 1 {
		capacity = 1
	}
	return ssCore[K]{
		cap:   capacity,
		idx:   make(map[K]int32, capacity),
		nodes: make([]ssNode[K], 0, capacity),
		heap:  make([]int32, 0, capacity),
		pos:   make([]int32, 0, capacity),
	}
}

// ssLess orders the eviction heap: smallest count first, ties to the
// largest value (so smaller values, which sort first in reports, are
// preferentially retained).
func ssLess[K cmp.Ordered](a, b *ssNode[K]) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	return a.value > b.value
}

// siftUp restores the heap property upward from heap position i.
func (s *ssCore[K]) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !ssLess(&s.nodes[s.heap[i]], &s.nodes[s.heap[parent]]) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap property downward from heap position i.
func (s *ssCore[K]) siftDown(i int32) {
	n := int32(len(s.heap))
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && ssLess(&s.nodes[s.heap[l]], &s.nodes[s.heap[min]]) {
			min = l
		}
		if r < n && ssLess(&s.nodes[s.heap[r]], &s.nodes[s.heap[min]]) {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// swap exchanges two heap positions; the map is untouched (it holds
// slots, and slots are stable).
func (s *ssCore[K]) swap(i, j int32) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = i
	s.pos[s.heap[j]] = j
}

// addN observes value v with weight n.
//
//efes:hot
func (s *ssCore[K]) addN(v K, n uint64) {
	if n == 0 {
		return
	}
	s.total += n
	if slot, ok := s.idx[v]; ok {
		s.nodes[slot].count += n
		s.siftDown(s.pos[slot]) // the count only grew: the node can only move down
		return
	}
	if len(s.nodes) < s.cap {
		slot := int32(len(s.nodes))
		s.nodes = append(s.nodes, ssNode[K]{value: v, count: n})
		s.heap = append(s.heap, slot)
		s.pos = append(s.pos, int32(len(s.heap)-1))
		s.idx[v] = slot
		s.siftUp(int32(len(s.heap) - 1))
		return
	}
	// Evict the deterministic minimum — the node at the heap root. Its
	// slot is reused for the newcomer, so only the eviction itself pays
	// a map delete + insert.
	slot := s.heap[0]
	root := s.nodes[slot]
	delete(s.idx, root.value)
	s.nodes[slot] = ssNode[K]{value: v, count: root.count + n, err: root.count}
	s.idx[v] = slot
	s.siftDown(0)
}

// entries returns the tracked counters sorted by (count desc, value
// asc) — the deterministic report order.
func (s *ssCore[K]) entries() []ssNode[K] {
	out := make([]ssNode[K], len(s.nodes))
	copy(out, s.nodes)
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return out[i].value < out[j].value
	})
	return out
}

// merge folds other into s using the Agarwal et al. combined summary:
// counts of shared values add; a value present in only one sketch picks
// up the other sketch's minimum count as additional overestimate bound;
// then the union is trimmed back to capacity deterministically. Merge is
// commutative; it is associative up to the capacity trim (the property
// tests pin both, trimming included).
func (s *ssCore[K]) merge(other *ssCore[K]) {
	if other == nil || other.total == 0 {
		return
	}
	sMin := s.minCount()
	oMin := other.minCount()
	merged := make(map[K]ssNode[K], len(s.nodes)+len(other.nodes))
	for _, nd := range s.nodes {
		if j, ok := other.idx[nd.value]; ok {
			oc := other.nodes[j]
			merged[nd.value] = ssNode[K]{value: nd.value, count: nd.count + oc.count, err: nd.err + oc.err}
		} else {
			merged[nd.value] = ssNode[K]{value: nd.value, count: nd.count + oMin, err: nd.err + oMin}
		}
	}
	for _, oc := range other.nodes {
		if _, ok := s.idx[oc.value]; !ok {
			merged[oc.value] = ssNode[K]{value: oc.value, count: oc.count + sMin, err: oc.err + sMin}
		}
	}
	s.total += other.total
	// Deterministic trim when over capacity: keep the cap entries with
	// the largest counts, ties to the smaller value.
	keys := make([]K, 0, len(merged))
	for v := range merged {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := merged[keys[i]].count, merged[keys[j]].count
		if ci != cj {
			return ci > cj
		}
		return keys[i] < keys[j]
	})
	if len(keys) > s.cap {
		keys = keys[:s.cap]
	}
	// Rebuild slots and heap from the survivors. Filling in descending
	// count order and heapifying keeps the rebuild deterministic.
	s.nodes = s.nodes[:0]
	s.heap = s.heap[:0]
	s.pos = s.pos[:0]
	s.idx = make(map[K]int32, len(keys))
	for _, v := range keys {
		slot := int32(len(s.nodes))
		s.nodes = append(s.nodes, merged[v])
		s.heap = append(s.heap, slot)
		s.pos = append(s.pos, slot)
		s.idx[v] = slot
	}
	for i := int32(len(s.heap))/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// minCount returns the minimum tracked count if the sketch is full (the
// floor a full sketch implicitly assigns to unseen values), else 0.
func (s *ssCore[K]) minCount() uint64 {
	if len(s.nodes) < s.cap {
		return 0
	}
	return s.nodes[s.heap[0]].count
}

// SpaceSaving is the string-keyed space-saving sketch used for rendered
// values (strings, patterns, timestamps). See ssCore for the algorithm
// and determinism argument.
type SpaceSaving struct {
	core ssCore[string]
}

// NewSpaceSaving returns an empty sketch holding at most capacity
// distinct values. Capacities below 1 are clamped to 1.
func NewSpaceSaving(capacity int) *SpaceSaving {
	return &SpaceSaving{core: newSSCore[string](capacity)}
}

// Capacity returns the maximum number of tracked values.
func (s *SpaceSaving) Capacity() int { return s.core.cap }

// Total returns the total weight observed.
func (s *SpaceSaving) Total() uint64 { return s.core.total }

// MaxOverestimate returns the worst-case overestimate of any reported
// count: total/capacity.
func (s *SpaceSaving) MaxOverestimate() uint64 {
	return s.core.total / uint64(s.core.cap)
}

// AddN observes value v with weight n (the dictionary-weighted kernels
// feed whole per-value counts at once).
//
//efes:hot
func (s *SpaceSaving) AddN(v string, n uint64) { s.core.addN(v, n) }

// Add observes value v once.
func (s *SpaceSaving) Add(v string) { s.core.addN(v, 1) }

// Entry is one reported heavy hitter.
type Entry struct {
	Value string
	Count uint64 // estimated frequency (true frequency ≤ Count ≤ true + Err)
	Err   uint64 // worst-case overestimate of Count
}

// Entries returns the tracked values sorted by (count desc, value asc) —
// the deterministic report order.
func (s *SpaceSaving) Entries() []Entry {
	nds := s.core.entries()
	out := make([]Entry, len(nds))
	for i, nd := range nds {
		out[i] = Entry{Value: nd.value, Count: nd.count, Err: nd.err}
	}
	return out
}

// Merge folds other into s; see ssCore.merge.
func (s *SpaceSaving) Merge(other *SpaceSaving) {
	if other == nil {
		return
	}
	s.core.merge(&other.core)
}

// SpaceSavingU64 is the uint64-keyed space-saving sketch used by the
// numeric kernels: values are keyed by their canonical bit patterns and
// rendered to strings only when the ≤ capacity survivors are reported,
// keeping per-distinct string allocation and hashing out of the hot
// path. Ties order by key bits, a strict total order, so eviction and
// reports stay deterministic (the order differs from the rendered-string
// order, which no caller relies on).
type SpaceSavingU64 struct {
	core ssCore[uint64]
}

// NewSpaceSavingU64 returns an empty numeric sketch holding at most
// capacity distinct keys. Capacities below 1 are clamped to 1.
func NewSpaceSavingU64(capacity int) *SpaceSavingU64 {
	return &SpaceSavingU64{core: newSSCore[uint64](capacity)}
}

// Capacity returns the maximum number of tracked keys.
func (s *SpaceSavingU64) Capacity() int { return s.core.cap }

// Total returns the total weight observed.
func (s *SpaceSavingU64) Total() uint64 { return s.core.total }

// MaxOverestimate returns the worst-case overestimate of any reported
// count: total/capacity.
func (s *SpaceSavingU64) MaxOverestimate() uint64 {
	return s.core.total / uint64(s.core.cap)
}

// AddN observes key k with weight n.
//
//efes:hot
func (s *SpaceSavingU64) AddN(k uint64, n uint64) { s.core.addN(k, n) }

// Add observes key k once.
func (s *SpaceSavingU64) Add(k uint64) { s.core.addN(k, 1) }

// EntryU64 is one reported heavy hitter keyed by bit pattern.
type EntryU64 struct {
	Key   uint64
	Count uint64 // estimated frequency (true frequency ≤ Count ≤ true + Err)
	Err   uint64 // worst-case overestimate of Count
}

// Entries returns the tracked keys sorted by (count desc, key asc) —
// the deterministic report order.
func (s *SpaceSavingU64) Entries() []EntryU64 {
	nds := s.core.entries()
	out := make([]EntryU64, len(nds))
	for i, nd := range nds {
		out[i] = EntryU64{Key: nd.value, Count: nd.count, Err: nd.err}
	}
	return out
}

// Merge folds other into s; see ssCore.merge.
func (s *SpaceSavingU64) Merge(other *SpaceSavingU64) {
	if other == nil {
		return
	}
	s.core.merge(&other.core)
}
