package sketch

import "math"

// Moments is a streaming count/mean/variance/min/max summary using
// Welford's update and the Chan et al. parallel combination for Merge.
// Count, Min, and Max are exact; Mean and Variance are algebraically
// exact and differ from a naive two-pass computation only by float
// round-off. Merge is commutative and associative up to that round-off.
type Moments struct {
	n    uint64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// NewMoments returns an empty summary.
func NewMoments() *Moments { return &Moments{} }

// Count returns the number of observed values.
func (m *Moments) Count() uint64 { return m.n }

// Add observes one value.
//
//efes:hot
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddWeighted observes w copies of x: the Chan combination with a
// degenerate summary (mean x, zero variance), so the dictionary-weighted
// kernels pay one update per distinct value instead of one per row.
//
//efes:hot
func (m *Moments) AddWeighted(x float64, w uint64) {
	if w == 0 {
		return
	}
	m.Merge(&Moments{n: w, mean: x, min: x, max: x})
}

// Merge folds other into m (Chan et al. pairwise combination).
func (m *Moments) Merge(other *Moments) {
	if other == nil || other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *other
		return
	}
	if other.min < m.min {
		m.min = other.min
	}
	if other.max > m.max {
		m.max = other.max
	}
	n := m.n + other.n
	d := other.mean - m.mean
	m.mean += d * float64(other.n) / float64(n)
	m.m2 += other.m2 + d*d*float64(m.n)*float64(other.n)/float64(n)
	m.n = n
}

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.mean
}

// Min returns the minimum observed value (0 when empty).
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return 0
	}
	return m.min
}

// Max returns the maximum observed value (0 when empty).
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return 0
	}
	return m.max
}

// StdDev returns the population standard deviation (0 when empty),
// matching the exact profiler's distOf convention.
func (m *Moments) StdDev() float64 {
	if m.n == 0 {
		return 0
	}
	v := m.m2 / float64(m.n)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return math.Sqrt(v)
}
