package sketch

import (
	"math"
	"math/bits"
)

// DefaultHLLPrecision is the register-count exponent used by the
// profiler: p=14 → 16384 one-byte registers, standard relative error
// 1.04/sqrt(16384) ≈ 0.81%.
const DefaultHLLPrecision = 14

// HLL is a HyperLogLog distinct-count sketch with 2^p registers. Merge
// is register-wise max, which is exactly commutative, associative, and
// idempotent, so the merged estimate is independent of chunk order and
// worker count.
type HLL struct {
	p    uint8
	regs []uint8 //efes:bounded fixed 2^p registers, allocated once at construction
}

// NewHLL returns an empty sketch with 2^p registers. Precisions outside
// [4, 18] are clamped.
func NewHLL(p uint8) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 18 {
		p = 18
	}
	return &HLL{p: p, regs: make([]uint8, 1<<p)}
}

// Precision returns the register-count exponent p.
func (h *HLL) Precision() uint8 { return h.p }

// RelativeError returns the sketch's standard relative error 1.04/sqrt(m).
func (h *HLL) RelativeError() float64 {
	return 1.04 / math.Sqrt(float64(uint64(1)<<h.p))
}

// Add observes one hashed value.
//
//efes:hot
func (h *HLL) Add(hash uint64) {
	idx := hash >> (64 - h.p)                                    // top p bits pick the register
	rank := uint8(bits.LeadingZeros64(hash<<h.p|1<<(h.p-1))) + 1 // rank of the rest
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Merge folds other into h (register-wise max). Precisions must match;
// mismatches panic, as they indicate a construction bug, not data.
func (h *HLL) Merge(other *HLL) {
	if other == nil {
		return
	}
	if other.p != h.p {
		panic("sketch: merging HLLs of different precision")
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// Estimate returns the estimated number of distinct values, using the
// standard HyperLogLog estimator with linear counting for the small
// range (the large-range correction is unnecessary with 64-bit hashes).
func (h *HLL) Estimate() uint64 {
	m := float64(uint64(1) << h.p)
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	switch h.p {
	case 4:
		alpha = 0.673
	case 5:
		alpha = 0.697
	case 6:
		alpha = 0.709
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros)) // linear counting
	}
	return uint64(est + 0.5)
}
