package profile

import (
	"math"
	"testing"
	"testing/quick"

	"efes/internal/relational"
)

func strValues(ss ...string) []relational.Value {
	out := make([]relational.Value, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func TestPattern(t *testing.T) {
	cases := []struct{ in, want string }{
		{"4:43", "9:9"},
		{"6:55", "9:9"},
		{"215900", "9"},
		{"Sweet Home Alabama", "a a a"},
		{"a1", "a9"},
		{"", ""},
		{"  ", " "},
		{"12-34-56", "9-9-9"},
		{"(555) 123", "(9) 9"},
		{"Ünïcödé", "a"},
	}
	for _, c := range cases {
		if got := Pattern(c.in); got != c.want {
			t.Errorf("Pattern(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFillAndNulls(t *testing.T) {
	vs := []relational.Value{"a", nil, "b", nil}
	cs := Values("t", "c", relational.String, vs)
	if cs.Rows != 4 || cs.Nulls != 2 {
		t.Fatalf("rows=%d nulls=%d", cs.Rows, cs.Nulls)
	}
	if cs.Fill != 0.5 {
		t.Errorf("fill = %v, want 0.5", cs.Fill)
	}
	if cs.Distinct != 2 {
		t.Errorf("distinct = %d, want 2", cs.Distinct)
	}
}

func TestConstancyExtremes(t *testing.T) {
	constant := Values("t", "c", relational.String, strValues("x", "x", "x", "x"))
	if constant.Constancy != 1 {
		t.Errorf("constant column constancy = %v, want 1", constant.Constancy)
	}
	allDistinct := Values("t", "c", relational.String, strValues("a", "b", "c", "d"))
	if allDistinct.Constancy != 0 {
		t.Errorf("all-distinct constancy = %v, want 0", allDistinct.Constancy)
	}
	empty := Values("t", "c", relational.String, nil)
	if empty.Constancy != 1 {
		t.Errorf("empty column constancy = %v, want 1", empty.Constancy)
	}
	skewed := Values("t", "c", relational.String, strValues("a", "a", "a", "a", "a", "a", "b"))
	if skewed.Constancy <= 0 || skewed.Constancy >= 1 {
		t.Errorf("skewed constancy = %v, want in (0,1)", skewed.Constancy)
	}
}

func TestConstancyBounds(t *testing.T) {
	f := func(vals []uint8) bool {
		vs := make([]relational.Value, len(vals))
		for i, v := range vals {
			vs[i] = int64(v % 8)
		}
		c := Values("t", "c", relational.Integer, vs).Constancy
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternsCollected(t *testing.T) {
	cs := Values("t", "duration", relational.String, strValues("4:43", "6:55", "3:26", "12:01"))
	if len(cs.Patterns) != 1 || cs.Patterns[0].Value != "9:9" || cs.Patterns[0].Count != 4 {
		t.Errorf("patterns = %v", cs.Patterns)
	}
	if cs.StringLength.Mean < 4 || cs.StringLength.Mean > 5 {
		t.Errorf("mean length = %v", cs.StringLength.Mean)
	}
}

func TestPatternCountInvariant(t *testing.T) {
	f := func(ss []string) bool {
		vs := make([]relational.Value, len(ss))
		for i, s := range ss {
			vs[i] = s
		}
		cs := Values("t", "c", relational.String, vs)
		// Number of distinct patterns cannot exceed number of distinct values.
		return len(cs.Patterns) <= maxInt(cs.Distinct, 1) || len(ss) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCharHistogramSumsToOne(t *testing.T) {
	cs := Values("t", "c", relational.String, strValues("ab", "ba", "cc"))
	sum := 0.0
	for _, f := range cs.CharHist {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("char histogram sums to %v", sum)
	}
	if math.Abs(cs.CharHist['a']-1.0/3) > 1e-9 {
		t.Errorf("freq(a) = %v", cs.CharHist['a'])
	}
}

func TestNumericStats(t *testing.T) {
	vs := []relational.Value{int64(10), int64(20), int64(30), nil}
	cs := Values("t", "n", relational.Integer, vs)
	if !cs.HasNumeric {
		t.Fatal("HasNumeric should be true")
	}
	if cs.Mean.Mean != 20 {
		t.Errorf("mean = %v", cs.Mean.Mean)
	}
	if cs.Min != 10 || cs.Max != 30 {
		t.Errorf("range = [%v,%v]", cs.Min, cs.Max)
	}
	total := 0
	for _, b := range cs.NumHist.Buckets {
		total += b
	}
	if total != 3 {
		t.Errorf("histogram total = %d, want 3", total)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	cs := Values("t", "n", relational.Integer, []relational.Value{int64(5), int64(5)})
	if cs.NumHist.Buckets[0] != 2 {
		t.Errorf("degenerate histogram = %v", cs.NumHist.Buckets)
	}
}

func TestTopK(t *testing.T) {
	var vs []relational.Value
	for i := 0; i < 20; i++ {
		vs = append(vs, "common")
	}
	vs = append(vs, "rare1", "rare2")
	cs := Values("t", "c", relational.String, vs)
	if cs.TopK[0].Value != "common" || cs.TopK[0].Count != 20 {
		t.Errorf("topK = %v", cs.TopK)
	}
	if cs.TopKCoverage != 1 {
		t.Errorf("coverage = %v, want 1 (only 3 distinct values)", cs.TopKCoverage)
	}
	// With more than TopKSize distinct values, coverage < 1.
	vs = nil
	for i := 0; i < 2*TopKSize; i++ {
		vs = append(vs, string(rune('a'+i)))
	}
	cs = Values("t", "c", relational.String, vs)
	if len(cs.TopK) != TopKSize {
		t.Errorf("topK size = %d", len(cs.TopK))
	}
	if cs.TopKCoverage != 0.5 {
		t.Errorf("coverage = %v, want 0.5", cs.TopKCoverage)
	}
}

func TestColumnFromDatabase(t *testing.T) {
	s := relational.NewSchema("x")
	s.MustAddTable(relational.MustTable("songs",
		relational.Column{Name: "name", Type: relational.String},
		relational.Column{Name: "length", Type: relational.Integer},
	))
	db := relational.NewDatabase(s)
	db.MustInsert("songs", "Hands Up", 215900)
	db.MustInsert("songs", "Labor Day", 238100)
	cs, err := Column(db, "songs", "length")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Mean.Mean != 227000 {
		t.Errorf("mean = %v", cs.Mean.Mean)
	}
	if _, err := Column(db, "songs", "bogus"); err == nil {
		t.Error("unknown column must fail")
	}
}

func discoveryFixture() *relational.Database {
	s := relational.NewSchema("d")
	s.MustAddTable(relational.MustTable("artists",
		relational.Column{Name: "id", Type: relational.Integer},
		relational.Column{Name: "name", Type: relational.String},
	))
	s.MustAddTable(relational.MustTable("albums",
		relational.Column{Name: "id", Type: relational.Integer},
		relational.Column{Name: "artist_id", Type: relational.Integer},
		relational.Column{Name: "note", Type: relational.String},
	))
	db := relational.NewDatabase(s)
	db.MustInsert("artists", 1, "A")
	db.MustInsert("artists", 2, "B")
	db.MustInsert("artists", 3, "C")
	db.MustInsert("albums", 10, 1, nil)
	db.MustInsert("albums", 11, 1, "x")
	db.MustInsert("albums", 12, 3, "y")
	return db
}

func TestDiscoverKeysAndInclusions(t *testing.T) {
	db := discoveryFixture()
	d := Discover(db)

	pk, ok := d.PrimaryKeys["artists"]
	if !ok || pk.Column != "id" {
		t.Errorf("artists PK = %v, %v", pk, ok)
	}
	pk, ok = d.PrimaryKeys["albums"]
	if !ok || pk.Column != "id" {
		t.Errorf("albums PK = %v, %v", pk, ok)
	}

	foundFK := false
	for _, inc := range d.Inclusions {
		if inc.Dependent.String() == "albums.artist_id" && inc.Referenced.String() == "artists.id" {
			foundFK = true
		}
	}
	if !foundFK {
		t.Errorf("inclusion albums.artist_id ⊆ artists.id not found: %v", d.Inclusions)
	}

	// note has NULLs: must not be not-null.
	for _, ref := range d.NotNull {
		if ref.String() == "albums.note" {
			t.Error("albums.note wrongly discovered NOT NULL")
		}
	}
}

func TestAugmentSchema(t *testing.T) {
	db := discoveryFixture()
	d := Discover(db)
	added := AugmentSchema(db, d)
	if added == 0 {
		t.Fatal("expected constraints to be added")
	}
	s := db.Schema
	if _, ok := s.PrimaryKeyOf("artists"); !ok {
		t.Error("artists PK not added")
	}
	fks := s.ForeignKeysOf("albums")
	foundFK := false
	for _, fk := range fks {
		if fk.Columns[0] == "artist_id" && fk.RefTable == "artists" {
			foundFK = true
		}
	}
	if !foundFK {
		t.Errorf("FK albums.artist_id -> artists.id not added: %v", fks)
	}
	// Idempotence: running again adds nothing.
	if again := AugmentSchema(db, Discover(db)); again != 0 {
		t.Errorf("second augmentation added %d constraints", again)
	}
	// The instance must be valid under the augmented schema.
	if v := db.Validate(); len(v) != 0 {
		t.Errorf("augmented schema introduces violations: %v", v)
	}
}

func TestDiscoverSkipsEmptyTables(t *testing.T) {
	s := relational.NewSchema("e")
	s.MustAddTable(relational.MustTable("empty", relational.Column{Name: "id", Type: relational.Integer}))
	db := relational.NewDatabase(s)
	d := Discover(db)
	if len(d.Unique) != 0 || len(d.NotNull) != 0 || len(d.PrimaryKeys) != 0 {
		t.Errorf("discovery on empty table should find nothing: %+v", d)
	}
}

func TestDistOf(t *testing.T) {
	d := distOf([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if d.Mean != 5 {
		t.Errorf("mean = %v", d.Mean)
	}
	if math.Abs(d.StdDev-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", d.StdDev)
	}
	if z := distOf(nil); z.Mean != 0 || z.StdDev != 0 {
		t.Errorf("distOf(nil) = %v", z)
	}
}

func TestTableStem(t *testing.T) {
	cases := map[string]string{
		"artists":  "artist",
		"releases": "release",
		"boxes":    "boxe", // one-suffix stemming only
		"labels":   "label",
		"pubs":     "pub",
		"s1":       "s1", // too short after trimming: keep the original
	}
	for in, want := range cases {
		if got := tableStem(in); got != want {
			t.Errorf("tableStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMustColumnPanics(t *testing.T) {
	s := relational.NewSchema("x")
	s.MustAddTable(relational.MustTable("t", relational.Column{Name: "a", Type: relational.String}))
	db := relational.NewDatabase(s)
	defer func() {
		if recover() == nil {
			t.Error("MustColumn on a missing column should panic")
		}
	}()
	MustColumn(db, "t", "missing")
}
