package profile

import (
	"math"
	"sort"
	"strconv"
	"time"

	"efes/internal/relational"
)

// This file holds the fused profiling kernels that run over the columnar
// substrate (relational.ColumnVector) instead of the row view. Every
// kernel is bit-identical to Values, the seed row-path implementation,
// which stays in stats.go as the compatibility path and the property-test
// oracle. The identity arguments, per statistic:
//
//   - Fill, Distinct, TopKCoverage: integer arithmetic, order-free.
//   - Constancy: the seed sums -p*log2(p) over counts sorted (count desc,
//     value asc). Entries with equal counts contribute identical addends,
//     so summing count-groups in descending count order reproduces the
//     identical float sequence without materializing or sorting the
//     rendered values (constancyFromMult).
//   - Mean/StdDev/Min/Max/Histogram and StringLength: the kernels collect
//     the same float64 values in the same row order the seed appends them
//     and run the seed's own distOf/minMax/histogramOf (or replicate the
//     two-pass loop verbatim for string lengths).
//   - TopK: the seed fully sorts all distinct values by (count desc,
//     value asc) and truncates to TopKSize. That ordering is a strict
//     total order (values are distinct), so the top-K set is unique and a
//     bounded min-heap selects it regardless of iteration order; the K
//     survivors are then sorted with the seed's comparator.
//   - Distinct values of numeric columns are keyed by their typed value
//     (int64, or float64 bits with all NaNs canonicalized) instead of the
//     rendered string; rendering is injective on non-NaN values and
//     collapses every NaN to "NaN", so the key spaces are isomorphic.
//
// String columns are where fusion pays most: each distinct string is
// processed once — pattern, rune count, character tallies — weighted by
// its dictionary count, instead of once per row.

// FromVector profiles a column from its columnar representation. The
// result is bit-identical to profiling the row view with Values.
func FromVector(table, column string, vec *relational.ColumnVector) *ColumnStats {
	cs := newStats(table, column, vec.Type(), vec.Len(), vec.NullCount())
	switch vec.Type() {
	case relational.String:
		stringKernelDict(cs, vec.Dict(), vec.Counts(), vec.Codes(), vec.Nulls())
	case relational.Integer:
		intKernel(cs, vec.Ints(), vec.Nulls())
	case relational.Float:
		floatKernel(cs, vec.Floats(), vec.Nulls())
	case relational.Bool:
		boolKernel(cs, vec.Bools(), vec.Nulls())
	case relational.Time:
		timeKernel(cs, vec.Times(), vec.Nulls())
	}
	return cs
}

// FromVectorCoerced profiles a column viewed through a coercion target
// type: the columnar equivalent of the Profiler's ColumnCoerced view.
// Values that cannot be coerced are dropped and counted (the second
// return); survivors (including NULLs) are profiled under typ. For string
// sources the coercion runs once per distinct dictionary entry instead of
// once per row.
func FromVectorCoerced(table, column string, vec *relational.ColumnVector, typ relational.Type) (*ColumnStats, int) {
	src := vec.Type()
	if typ == src {
		return FromVector(table, column, vec), 0
	}
	if impossibleCoercion(src, typ) {
		// Every non-NULL value fails to coerce; only NULLs survive.
		return Values(table, column, typ, make([]relational.Value, vec.NullCount())), vec.Len() - vec.NullCount()
	}
	switch src {
	case relational.String:
		return coercedFromString(table, column, vec, typ)
	case relational.Integer:
		switch typ {
		case relational.Float:
			return intToFloat(table, column, vec), 0
		case relational.String:
			return intToString(table, column, vec), 0
		}
	case relational.Float:
		switch typ {
		case relational.Integer:
			return floatToInt(table, column, vec)
		case relational.String:
			return floatToString(table, column, vec), 0
		}
	case relational.Bool:
		if typ == relational.String {
			return boolToString(table, column, vec), 0
		}
	}
	// Rare combination (e.g. Time source rendered to String): coerce
	// value by value exactly like the row path.
	return coercedFallback(table, column, vec, typ)
}

// impossibleCoercion reports whether no non-NULL canonical value of type
// src can coerce to dst (the Coerce switch has no case for the pair), so
// the whole column can be classified without per-row error construction.
func impossibleCoercion(src, dst relational.Type) bool {
	switch src {
	case relational.Integer, relational.Float:
		return dst == relational.Bool || dst == relational.Time
	case relational.Bool:
		return dst == relational.Integer || dst == relational.Float || dst == relational.Time
	case relational.Time:
		return dst == relational.Integer || dst == relational.Float || dst == relational.Bool
	}
	return false
}

// coercedFallback materializes the column and replicates the row path:
// coerce every value, drop failures, profile the survivors.
func coercedFallback(table, column string, vec *relational.ColumnVector, typ relational.Type) (*ColumnStats, int) {
	n := vec.Len()
	coerced := make([]relational.Value, 0, n)
	incompatible := 0
	for i := 0; i < n; i++ {
		cv, err := relational.Coerce(typ, vec.Value(i))
		if err != nil {
			incompatible++
			continue
		}
		coerced = append(coerced, cv)
	}
	return Values(table, column, typ, coerced), incompatible
}

// newStats seeds a ColumnStats with the row-count statistics shared by
// every kernel.
func newStats(table, column string, typ relational.Type, rows, nulls int) *ColumnStats {
	cs := &ColumnStats{Table: table, Column: column, Type: typ, Rows: rows, Nulls: nulls}
	if rows > 0 {
		cs.Fill = float64(rows-nulls) / float64(rows)
	}
	cs.Patterns = []ValueCount{}
	return cs
}

// stringKernelDict is the fused string kernel: one pass over the
// dictionary computes patterns, character tallies, rune lengths, the
// distinct count, the constancy count-multiset, and the top-k — each
// distinct string processed once, weighted by its occurrence count — and
// two passes over the code vector replicate the seed's row-order string-
// length accumulation. It serves the raw string column and every derived
// to-string view (the derived dictionaries of intToString etc.).
//
//efes:hot
func stringKernelDict(cs *ColumnStats, strs []string, occ []int, codes []int32, nulls *relational.Bitmap) {
	nonNull := cs.Rows - cs.Nulls
	patterns := make(map[string]int)
	charCounts := make(map[rune]int)
	totalChars := 0
	runeLens := make([]float64, len(strs))
	mult := make(map[int]int)
	distinct := 0
	tk := newTopK()
	for c, s := range strs {
		n := occ[c]
		if n == 0 {
			continue // dead dictionary entry (deleted/overwritten rows)
		}
		distinct++
		mult[n]++
		tk.considerString(n, s)
		patterns[Pattern(s)] += n
		rl := 0
		for _, r := range s {
			charCounts[r] += n
			totalChars += n
			rl++
		}
		runeLens[c] = float64(rl)
	}
	cs.Distinct = distinct
	cs.Constancy = constancyFromMult(mult, distinct, nonNull)
	cs.Patterns = sortedCounts(patterns)
	if totalChars > 0 {
		cs.CharHist = make(map[rune]float64, len(charCounts))
		for r, n := range charCounts {
			cs.CharHist[r] = float64(n) / float64(totalChars)
		}
	}
	if nonNull > 0 {
		// Row-order two-pass mean/stddev over rune lengths: the exact
		// float sequence distOf runs over the seed's lengths slice.
		sum := 0.0
		for i, c := range codes {
			if nulls.Get(i) {
				continue
			}
			sum += runeLens[c]
		}
		mean := sum / float64(nonNull)
		ss := 0.0
		for i, c := range codes {
			if nulls.Get(i) {
				continue
			}
			d := runeLens[c] - mean
			ss += d * d
		}
		cs.StringLength = Dist{Mean: mean, StdDev: math.Sqrt(ss / float64(nonNull))}
	}
	finishTopK(cs, tk, nonNull)
}

// intKernel profiles an integer column: one pass builds the typed
// distinct map and the dense numeric vector in row order; the numeric
// statistics then run over the dense vector with the seed's own helpers.
//
//efes:hot
func intKernel(cs *ColumnStats, ints []int64, nulls *relational.Bitmap) {
	nonNull := cs.Rows - cs.Nulls
	cnt := make(map[int64]int)
	xs := make([]float64, 0, nonNull)
	for i, x := range ints {
		if nulls.Get(i) {
			continue
		}
		cnt[x]++
		xs = append(xs, float64(x))
	}
	finishInts(cs, cnt, nonNull)
	finishNumeric(cs, xs)
}

// floatKernel profiles a float column. With no NULLs the typed vector is
// used as the dense numeric vector directly (zero copies).
//
//efes:hot
func floatKernel(cs *ColumnStats, floats []float64, nulls *relational.Bitmap) {
	nonNull := cs.Rows - cs.Nulls
	cnt := make(map[uint64]int)
	var xs []float64
	if cs.Nulls == 0 {
		xs = floats
		for _, x := range floats {
			cnt[floatKey(x)]++
		}
	} else {
		dense := make([]float64, 0, nonNull)
		for i, x := range floats {
			if nulls.Get(i) {
				continue
			}
			cnt[floatKey(x)]++
			dense = append(dense, x)
		}
		xs = dense
	}
	finishFloats(cs, cnt, nonNull)
	finishNumeric(cs, xs)
}

// boolKernel profiles a boolean column.
//
//efes:hot
func boolKernel(cs *ColumnStats, bools []bool, nulls *relational.Bitmap) {
	nonNull := cs.Rows - cs.Nulls
	nTrue, nFalse := 0, 0
	xs := make([]float64, 0, nonNull)
	for i, x := range bools {
		if nulls.Get(i) {
			continue
		}
		if x {
			nTrue++
			xs = append(xs, 1)
		} else {
			nFalse++
			xs = append(xs, 0)
		}
	}
	finishBools(cs, nTrue, nFalse, nonNull)
	finishNumeric(cs, xs)
}

// timeKernel profiles a timestamp column. Timestamps contribute no
// numeric or string statistics in the seed (the Values type switch has no
// time case), only rendered-value counts.
//
//efes:hot
func timeKernel(cs *ColumnStats, times []time.Time, nulls *relational.Bitmap) {
	nonNull := cs.Rows - cs.Nulls
	cnt := make(map[string]int)
	for i, x := range times {
		if nulls.Get(i) {
			continue
		}
		cnt[x.Format(time.RFC3339)]++
	}
	finishStringCounts(cs, cnt, nonNull)
}

// coercedFromString profiles a string column viewed through another type.
// Coercion (parsing) runs once per distinct dictionary entry via the
// typed relational.Parse* helpers — the exact string semantics of the
// row path's relational.Coerce, minus the per-value interface boxing;
// rows whose entry fails to parse are dropped as incompatible.
//
//efes:hot
func coercedFromString(table, column string, vec *relational.ColumnVector, typ relational.Type) (*ColumnStats, int) {
	dict, occ, codes, nulls := vec.Dict(), vec.Counts(), vec.Codes(), vec.Nulls()
	ok := make([]bool, len(dict))
	incompatible := 0
	switch typ {
	case relational.Integer:
		vals := make([]int64, len(dict))
		for c, s := range dict {
			if occ[c] == 0 {
				continue
			}
			n, err := relational.ParseInt(s)
			if err != nil {
				incompatible += occ[c]
				continue
			}
			vals[c], ok[c] = n, true
		}
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		cnt := make(map[int64]int)
		for c := range dict {
			if occ[c] > 0 && ok[c] {
				cnt[vals[c]] += occ[c]
			}
		}
		xs := make([]float64, 0, nonNull)
		for i, c := range codes {
			if nulls.Get(i) || !ok[c] {
				continue
			}
			xs = append(xs, float64(vals[c]))
		}
		finishInts(cs, cnt, nonNull)
		finishNumeric(cs, xs)
		return cs, incompatible
	case relational.Float:
		vals := make([]float64, len(dict))
		for c, s := range dict {
			if occ[c] == 0 {
				continue
			}
			f, err := relational.ParseFloat(s)
			if err != nil {
				incompatible += occ[c]
				continue
			}
			vals[c], ok[c] = f, true
		}
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		cnt := make(map[uint64]int)
		for c := range dict {
			if occ[c] > 0 && ok[c] {
				cnt[floatKey(vals[c])] += occ[c]
			}
		}
		xs := make([]float64, 0, nonNull)
		for i, c := range codes {
			if nulls.Get(i) || !ok[c] {
				continue
			}
			xs = append(xs, vals[c])
		}
		finishFloats(cs, cnt, nonNull)
		finishNumeric(cs, xs)
		return cs, incompatible
	case relational.Bool:
		vals := make([]bool, len(dict))
		for c, s := range dict {
			if occ[c] == 0 {
				continue
			}
			b, err := relational.ParseBool(s)
			if err != nil {
				incompatible += occ[c]
				continue
			}
			vals[c], ok[c] = b, true
		}
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		nTrue, nFalse := 0, 0
		for c := range dict {
			if occ[c] == 0 || !ok[c] {
				continue
			}
			if vals[c] {
				nTrue += occ[c]
			} else {
				nFalse += occ[c]
			}
		}
		xs := make([]float64, 0, nonNull)
		for i, c := range codes {
			if nulls.Get(i) || !ok[c] {
				continue
			}
			if vals[c] {
				xs = append(xs, 1)
			} else {
				xs = append(xs, 0)
			}
		}
		finishBools(cs, nTrue, nFalse, nonNull)
		finishNumeric(cs, xs)
		return cs, incompatible
	default: // relational.Time
		strs := make([]string, len(dict))
		for c, s := range dict {
			if occ[c] == 0 {
				continue
			}
			ts, err := relational.ParseTime(s)
			if err != nil {
				incompatible += occ[c]
				continue
			}
			strs[c], ok[c] = relational.FormatTime(ts), true
		}
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		cnt := make(map[string]int)
		for c := range dict {
			if occ[c] > 0 && ok[c] {
				cnt[strs[c]] += occ[c]
			}
		}
		finishStringCounts(cs, cnt, nonNull)
		return cs, incompatible
	}
}

// intToFloat profiles an integer column viewed as float (never fails).
//
//efes:hot
func intToFloat(table, column string, vec *relational.ColumnVector) *ColumnStats {
	ints, nulls := vec.Ints(), vec.Nulls()
	cs := newStats(table, column, relational.Float, vec.Len(), vec.NullCount())
	nonNull := cs.Rows - cs.Nulls
	cnt := make(map[uint64]int)
	xs := make([]float64, 0, nonNull)
	for i, x := range ints {
		if nulls.Get(i) {
			continue
		}
		f := float64(x) // may collapse >2^53 magnitudes, exactly as Coerce does
		cnt[floatKey(f)]++
		xs = append(xs, f)
	}
	finishFloats(cs, cnt, nonNull)
	finishNumeric(cs, xs)
	return cs
}

// floatToInt profiles a float column viewed as integer: only integral,
// finite values coerce (the seed's Trunc check, replicated per row).
//
//efes:hot
func floatToInt(table, column string, vec *relational.ColumnVector) (*ColumnStats, int) {
	floats, nulls := vec.Floats(), vec.Nulls()
	cnt := make(map[int64]int)
	xs := make([]float64, 0, vec.Len()-vec.NullCount())
	incompatible := 0
	for i, x := range floats {
		if nulls.Get(i) {
			continue
		}
		if x != math.Trunc(x) || math.IsInf(x, 0) {
			incompatible++
			continue
		}
		v := int64(x)
		cnt[v]++
		xs = append(xs, float64(v))
	}
	cs := newStats(table, column, relational.Integer, vec.Len()-incompatible, vec.NullCount())
	finishInts(cs, cnt, cs.Rows-cs.Nulls)
	finishNumeric(cs, xs)
	return cs, incompatible
}

// intToString profiles an integer column rendered as strings, building a
// derived dictionary (one rendering per distinct value) for the fused
// string kernel.
//
//efes:hot
func intToString(table, column string, vec *relational.ColumnVector) *ColumnStats {
	ints, nulls := vec.Ints(), vec.Nulls()
	nonNull := vec.Len() - vec.NullCount()
	m := make(map[int64]int32)
	strs := make([]string, 0, nonNull) // distinct ≤ non-NULL rows
	occ := make([]int, 0, nonNull)
	codes := make([]int32, len(ints))
	for i, x := range ints {
		if nulls.Get(i) {
			continue
		}
		c, seen := m[x]
		if !seen {
			c = int32(len(strs))
			m[x] = c
			strs = append(strs, strconv.FormatInt(x, 10))
			occ = append(occ, 0)
		}
		occ[c]++
		codes[i] = c
	}
	cs := newStats(table, column, relational.String, vec.Len(), vec.NullCount())
	stringKernelDict(cs, strs, occ, codes, nulls)
	return cs
}

// floatToString profiles a float column rendered as strings via a derived
// dictionary keyed by float bits (NaNs canonicalized: they all render
// "NaN").
//
//efes:hot
func floatToString(table, column string, vec *relational.ColumnVector) *ColumnStats {
	floats, nulls := vec.Floats(), vec.Nulls()
	nonNull := vec.Len() - vec.NullCount()
	m := make(map[uint64]int32)
	strs := make([]string, 0, nonNull) // distinct ≤ non-NULL rows
	occ := make([]int, 0, nonNull)
	codes := make([]int32, len(floats))
	for i, x := range floats {
		if nulls.Get(i) {
			continue
		}
		k := floatKey(x)
		c, seen := m[k]
		if !seen {
			c = int32(len(strs))
			m[k] = c
			strs = append(strs, strconv.FormatFloat(x, 'g', -1, 64))
			occ = append(occ, 0)
		}
		occ[c]++
		codes[i] = c
	}
	cs := newStats(table, column, relational.String, vec.Len(), vec.NullCount())
	stringKernelDict(cs, strs, occ, codes, nulls)
	return cs
}

// boolToString profiles a boolean column rendered as strings.
//
//efes:hot
func boolToString(table, column string, vec *relational.ColumnVector) *ColumnStats {
	bools, nulls := vec.Bools(), vec.Nulls()
	strs := make([]string, 0, 2)
	occ := make([]int, 0, 2)
	codes := make([]int32, len(bools))
	tIdx, fIdx := int32(-1), int32(-1)
	for i, x := range bools {
		if nulls.Get(i) {
			continue
		}
		if x {
			if tIdx < 0 {
				tIdx = int32(len(strs))
				strs = append(strs, "true")
				occ = append(occ, 0)
			}
			occ[tIdx]++
			codes[i] = tIdx
		} else {
			if fIdx < 0 {
				fIdx = int32(len(strs))
				strs = append(strs, "false")
				occ = append(occ, 0)
			}
			occ[fIdx]++
			codes[i] = fIdx
		}
	}
	cs := newStats(table, column, relational.String, vec.Len(), vec.NullCount())
	stringKernelDict(cs, strs, occ, codes, nulls)
	return cs
}

// floatKey keys a float for distinct counting: its bit pattern with NaNs
// canonicalized so that every NaN payload collapses to the single "NaN"
// rendering. Shared with the columnar substrate (relational.FloatKey).
func floatKey(x float64) uint64 { return relational.FloatKey(x) }

// finishInts derives Distinct, Constancy and TopK from a typed integer
// count map. Values are rendered only when the top-k heap needs them.
//
//efes:hot
func finishInts(cs *ColumnStats, cnt map[int64]int, nonNull int) {
	cs.Distinct = len(cnt)
	mult := make(map[int]int)
	tk := newTopK()
	var cur int64
	lazy := func() string { return strconv.FormatInt(cur, 10) }
	for x, n := range cnt {
		mult[n]++
		cur = x
		tk.consider(n, lazy)
	}
	cs.Constancy = constancyFromMult(mult, len(cnt), nonNull)
	finishTopK(cs, tk, nonNull)
}

// finishFloats is finishInts for bit-keyed float count maps.
//
//efes:hot
func finishFloats(cs *ColumnStats, cnt map[uint64]int, nonNull int) {
	cs.Distinct = len(cnt)
	mult := make(map[int]int)
	tk := newTopK()
	var cur uint64
	lazy := func() string { return strconv.FormatFloat(math.Float64frombits(cur), 'g', -1, 64) }
	for b, n := range cnt {
		mult[n]++
		cur = b
		tk.consider(n, lazy)
	}
	cs.Constancy = constancyFromMult(mult, len(cnt), nonNull)
	finishTopK(cs, tk, nonNull)
}

// finishBools derives the count statistics of a boolean view.
func finishBools(cs *ColumnStats, nTrue, nFalse, nonNull int) {
	mult := make(map[int]int)
	tk := newTopK()
	distinct := 0
	if nTrue > 0 {
		distinct++
		mult[nTrue]++
		tk.considerString(nTrue, "true")
	}
	if nFalse > 0 {
		distinct++
		mult[nFalse]++
		tk.considerString(nFalse, "false")
	}
	cs.Distinct = distinct
	cs.Constancy = constancyFromMult(mult, distinct, nonNull)
	finishTopK(cs, tk, nonNull)
}

// finishStringCounts derives the count statistics from a rendered-value
// count map (timestamp views).
//
//efes:hot
func finishStringCounts(cs *ColumnStats, cnt map[string]int, nonNull int) {
	cs.Distinct = len(cnt)
	mult := make(map[int]int)
	tk := newTopK()
	for s, n := range cnt {
		mult[n]++
		tk.considerString(n, s)
	}
	cs.Constancy = constancyFromMult(mult, len(cnt), nonNull)
	finishTopK(cs, tk, nonNull)
}

// finishNumeric fills the numeric statistics from the dense row-order
// value vector, using the seed's own helpers so the float operation
// sequence is identical by construction.
func finishNumeric(cs *ColumnStats, xs []float64) {
	if len(xs) == 0 {
		return
	}
	cs.HasNumeric = true
	cs.Mean = distOf(xs)
	cs.Min, cs.Max = minMax(xs)
	cs.NumHist = histogramOf(xs, cs.Min, cs.Max)
}

// finishTopK sorts the heap's survivors with the seed comparator and
// computes the coverage share.
func finishTopK(cs *ColumnStats, tk *topK, nonNull int) {
	cs.TopK = tk.sorted()
	covered := 0
	for _, vc := range cs.TopK {
		covered += vc.Count
	}
	if nonNull > 0 {
		cs.TopKCoverage = float64(covered) / float64(nonNull)
	}
}

// constancyFromMult computes the seed's constancy from a count multiset
// (count -> number of distinct values with that count). The seed sums
// -p*log2(p) over entries sorted (count desc, value asc); equal counts
// yield identical addends, so walking the count groups in descending
// order reproduces the identical float sequence. The inner loop re-reads
// the seed's expression verbatim so no term is pre-rounded differently.
//
//efes:hot
func constancyFromMult(mult map[int]int, distinct, nonNull int) float64 {
	if nonNull == 0 || distinct <= 1 {
		return 1
	}
	counts := make([]int, 0, len(mult))
	for c := range mult {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(nonNull)
		for k := 0; k < mult[c]; k++ {
			h -= p * math.Log2(p)
		}
	}
	hmax := math.Log2(float64(nonNull))
	if hmax == 0 {
		return 1
	}
	v := 1 - h/hmax
	if v < 0 {
		return 0
	}
	return v
}

// topK selects the TopKSize best entries under the seed ordering
// (count desc, value asc) with a bounded min-heap whose root is the worst
// kept entry. The ordering is a strict total order (values are distinct),
// so the selected set — and, after the final sort, the result slice — is
// independent of insertion order.
type topK struct {
	h []ValueCount
}

func newTopK() *topK {
	return &topK{h: make([]ValueCount, 0, TopKSize)}
}

// vcWorse reports whether a ranks strictly below b in the seed ordering.
func vcWorse(a, b ValueCount) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Value > b.Value
}

// considerString offers an entry whose rendering is already at hand.
func (t *topK) considerString(count int, value string) {
	if len(t.h) < TopKSize {
		t.h = append(t.h, ValueCount{Value: value, Count: count})
		t.up(len(t.h) - 1)
		return
	}
	if count < t.h[0].Count || (count == t.h[0].Count && value >= t.h[0].Value) {
		return
	}
	t.h[0] = ValueCount{Value: value, Count: count}
	t.down(0)
}

// consider offers an entry whose rendering is deferred: value is called
// only if the entry can enter the heap (a count strictly below the
// current worst never renders).
func (t *topK) consider(count int, value func() string) {
	if len(t.h) < TopKSize {
		t.h = append(t.h, ValueCount{Value: value(), Count: count})
		t.up(len(t.h) - 1)
		return
	}
	if count < t.h[0].Count {
		return
	}
	if count == t.h[0].Count {
		v := value()
		if v >= t.h[0].Value {
			return
		}
		t.h[0] = ValueCount{Value: v, Count: count}
		t.down(0)
		return
	}
	t.h[0] = ValueCount{Value: value(), Count: count}
	t.down(0)
}

func (t *topK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !vcWorse(t.h[i], t.h[p]) {
			break
		}
		t.h[i], t.h[p] = t.h[p], t.h[i]
		i = p
	}
}

func (t *topK) down(i int) {
	n := len(t.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && vcWorse(t.h[r], t.h[l]) {
			m = r
		}
		if !vcWorse(t.h[m], t.h[i]) {
			break
		}
		t.h[i], t.h[m] = t.h[m], t.h[i]
		i = m
	}
}

// sorted returns the survivors in the seed's final order.
func (t *topK) sorted() []ValueCount {
	out := t.h
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}
