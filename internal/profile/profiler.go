package profile

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"efes/internal/faultinject"
	"efes/internal/relational"
)

// profileKey identifies one memoized column profile. The database is keyed
// by identity (pointer): profiles describe one concrete instance, and two
// scenarios never share instances unless they really are the same data.
// The type is part of the key because a column can be profiled under its
// declared type or viewed through a different (coercion target) type, and
// the two profiles differ.
type profileKey struct {
	db      *relational.Database
	table   string
	column  string
	typ     relational.Type
	coerced bool
	mode    Mode
}

// Mode selects between the exact profiling kernels (bit-identical to the
// seed row path) and the approximate, sketch-based kernels (bounded
// memory, documented error bounds, results marked with ApproxInfo). It
// is part of every cache key — in memory and on disk — so approximate
// profiles are never served where exact ones were requested, or vice
// versa.
type Mode int

const (
	// ModeExact runs the sharded exact kernels (the zero value).
	ModeExact Mode = iota
	// ModeApprox runs the sketch-based kernels.
	ModeApprox
)

// String renders the mode as its flag/query-parameter spelling.
func (m Mode) String() string {
	if m == ModeApprox {
		return "approx"
	}
	return "exact"
}

// ParseMode parses a mode spelling; the empty string means exact.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "approx", "approximate":
		return ModeApprox, nil
	}
	return ModeExact, fmt.Errorf("profile: unknown mode %q (want exact or approx)", s)
}

// CacheFingerprint is the mode segment of durable cache keys (stats and
// results alike): the approximate segment embeds the sketch parameters,
// so entries computed under different algorithms or bounds never collide
// — and approximate entries never warm the exact cache.
func (m Mode) CacheFingerprint() string {
	if m == ModeApprox {
		return "approx/" + ApproxFingerprint()
	}
	return "exact"
}

// profileEntry is one cache slot. The ready channel implements in-flight
// deduplication: the first goroutine to request a key computes it while
// concurrent requesters block on ready instead of recomputing. The slot
// deliberately has no error field — errors are never memoized (a failed
// computation removes its entry and the waiters retry), so the struct
// carries the efes:cache-entry marker that makes efeslint's errcache
// analyzer reject any attempt to store an error in it.
//
//efes:cache-entry
type profileEntry struct {
	ready        chan struct{}
	stats        *ColumnStats
	incompatible int
	ok           bool // false: the computation failed and the entry was dropped
}

// Profiler memoizes column profiles and fans whole-table and
// whole-database profiling out over a bounded worker pool. It is safe for
// concurrent use by multiple goroutines; a single Profiler can be shared
// across estimation modules, frameworks, and experiment workers so that
// every (database, table, column, type) combination is profiled exactly
// once per process, however many correspondences refer to it.
//
// Entries key the database by pointer identity and therefore keep the
// instance alive; call Reset to release a long-lived Profiler's memory
// between unrelated workloads.
//
//efes:daemon-lifetime
type Profiler struct {
	workers int
	mode    Mode
	store   Store

	mu      sync.Mutex
	entries map[profileKey]*profileEntry //efes:guardedby mu

	hits   atomic.Int64
	misses atomic.Int64
	// diskHits counts memo misses served from the durable store without
	// recomputing; computes counts profiles actually computed from the
	// instance. misses == diskHits + computes + failed computations.
	diskHits atomic.Int64
	computes atomic.Int64
}

// Store is a durable byte store for computed column profiles — the
// read-through hook behind the in-process memo, implemented by the
// content-addressed on-disk cache (internal/persist, Cache.Namespace).
// Both methods are best-effort: Get returning ok=false means "compute
// it", and Put is fire-and-forget. Implementations must be safe for
// concurrent use. Only successful computations are ever passed to Put —
// errors are never persisted, mirroring the in-memory memo's contract.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

// SetStore installs the durable read-through store. Like the worker
// count it must be set before the Profiler is shared across goroutines.
// A profile that misses the in-process memo is then looked up in the
// store under a content address (table bytes, column, type) before being
// computed, and successful computations are written back — so a fresh
// process over the same data starts warm.
func (p *Profiler) SetStore(s Store) *Profiler {
	p.store = s
	return p
}

// SetMode selects the default profiling mode for every lookup that does
// not specify one. Like the worker count it must be set before the
// Profiler is shared across goroutines; per-request overrides go through
// ColumnContextMode instead.
func (p *Profiler) SetMode(m Mode) *Profiler {
	p.mode = m
	return p
}

// Mode returns the default profiling mode.
func (p *Profiler) Mode() Mode { return p.mode }

// statsFormatVersion tags the durable stats keys; bump it when the
// ColumnStats JSON shape or the profiling semantics change, so stale
// entries stop matching instead of being misread. v2: profiles gained
// the optional Approx error-bound marker and keys gained the mode
// fingerprint.
const statsFormatVersion = "efes-stats-v2"

// statsEnvelope is the durable form of one memoized profile.
type statsEnvelope struct {
	Stats        *ColumnStats `json:"stats"`
	Incompatible int          `json:"incompatible,omitempty"`
}

// diskKey derives the content address of a profile: a pure function of
// the table's serialized bytes, the column, and the (possibly coercion
// target) type — independent of process, pointer identity, and upload
// order, so any process over the same data shares entries.
func diskKey(key profileKey) (string, bool) {
	tableHash, err := key.db.ContentHash(key.table)
	if err != nil {
		return "", false
	}
	coerced := "raw"
	if key.coerced {
		coerced = "coerced"
	}
	sum := sha256.Sum256([]byte(statsFormatVersion + "\x00" + tableHash + "\x00" +
		key.table + "\x00" + key.column + "\x00" + key.typ.String() + "\x00" + coerced + "\x00" +
		key.mode.CacheFingerprint()))
	return hex.EncodeToString(sum[:]), true
}

// StatsKeyFor exposes the durable content address of a column profile:
// a pure function of the table's bytes, the column, the (possibly
// coercion target) type, and the profiling mode including its sketch-
// parameter fingerprint. It is the single key derivation shared with
// internal/persist, so every consumer agrees that exact and approximate
// entries never collide.
func StatsKeyFor(db *relational.Database, table, column string, typ relational.Type, coerced bool, mode Mode) (string, bool) {
	return diskKey(profileKey{db: db, table: table, column: column, typ: typ, coerced: coerced, mode: mode})
}

// loadStored fetches and validates a profile from the durable store.
// Any mismatch — unreadable JSON, wrong column identity — is treated as
// a miss: the profile is recomputed and the entry overwritten.
func (p *Profiler) loadStored(key profileKey, dkey string) (*ColumnStats, int, bool) {
	data, ok := p.store.Get(dkey)
	if !ok {
		return nil, 0, false
	}
	var env statsEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Stats == nil {
		return nil, 0, false
	}
	if env.Stats.Table != key.table || env.Stats.Column != key.column || env.Stats.Type != key.typ {
		return nil, 0, false
	}
	return env.Stats, env.Incompatible, true
}

// NewProfiler creates a Profiler whose bulk operations (ProfileTable,
// ProfileDatabase) use at most workers concurrent goroutines; workers <= 0
// selects GOMAXPROCS.
func NewProfiler(workers int) *Profiler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Profiler{workers: workers, entries: make(map[profileKey]*profileEntry)}
}

// Workers returns the concurrency bound of the bulk operations.
func (p *Profiler) Workers() int { return p.workers }

// get returns the cached entry for key, computing it via compute exactly
// once on success. Concurrent requests for the same key wait for the
// first computation instead of duplicating it, but stop waiting when
// their context is cancelled. Errors — context cancellation, injected
// faults, and compute failures alike — are returned to the caller and
// never memoized: a failed computation removes its entry, so a transient
// failure does not poison the cache for later callers. A waiter that
// piggybacked on a computation that failed retries from the top (the
// failing goroutine got the error; the waiter may well succeed).
func (p *Profiler) get(ctx context.Context, key profileKey, compute func() (*ColumnStats, int, error)) (*ColumnStats, int, error) {
	if err := faultinject.Fire("profile:column"); err != nil {
		return nil, 0, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		p.mu.Lock()
		e, ok := p.entries[key]
		if ok {
			p.mu.Unlock()
			p.hits.Add(1)
			select {
			case <-e.ready:
				if e.ok {
					return e.stats, e.incompatible, nil
				}
				continue // the computation we waited for failed; retry
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}
		}
		e = &profileEntry{ready: make(chan struct{})}
		p.entries[key] = e
		p.mu.Unlock()
		p.misses.Add(1)
		// Durable read-through: a memo miss may still be a disk hit —
		// some earlier process profiled the same bytes. Only on a disk
		// miss is the profile actually computed, and only successful
		// computations are written back (errors are never persisted).
		var dkey string
		if p.store != nil {
			var keyOK bool
			if dkey, keyOK = diskKey(key); keyOK {
				if stats, incompatible, ok := p.loadStored(key, dkey); ok {
					p.diskHits.Add(1)
					e.stats, e.incompatible, e.ok = stats, incompatible, true
					close(e.ready)
					return stats, incompatible, nil
				}
			} else {
				dkey = ""
			}
		}
		stats, incompatible, err := compute()
		if err != nil {
			p.mu.Lock()
			delete(p.entries, key)
			p.mu.Unlock()
			close(e.ready) // wake waiters; e.ok stays false and they retry
			return nil, 0, err
		}
		p.computes.Add(1)
		if p.store != nil && dkey != "" {
			// Best-effort write-back; NaN/Inf statistics are not
			// JSON-encodable and simply stay memory-only.
			if data, merr := json.Marshal(statsEnvelope{Stats: stats, Incompatible: incompatible}); merr == nil {
				p.store.Put(dkey, data)
			}
		}
		e.stats, e.incompatible, e.ok = stats, incompatible, true
		close(e.ready)
		return stats, incompatible, nil
	}
}

// Column returns the memoized profile of a column under its declared type
// (the raw view: values are profiled as stored).
func (p *Profiler) Column(db *relational.Database, table, column string) (*ColumnStats, error) {
	return p.ColumnContext(context.Background(), db, table, column)
}

// ColumnContext is Column with cancellation: a caller whose context is
// done stops waiting (and new computations are not started), without
// disturbing other users of the shared cache. It profiles under the
// Profiler's default mode.
func (p *Profiler) ColumnContext(ctx context.Context, db *relational.Database, table, column string) (*ColumnStats, error) {
	return p.ColumnContextMode(ctx, db, table, column, p.mode)
}

// ColumnContextMode is ColumnContext with a per-request mode override:
// the daemon serves ?mode=approx requests from the same shared Profiler
// without flipping its default. Exact and approximate profiles occupy
// separate cache entries, in memory and on disk.
func (p *Profiler) ColumnContextMode(ctx context.Context, db *relational.Database, table, column string, mode Mode) (*ColumnStats, error) {
	t := db.Schema.Table(table)
	if t == nil {
		return nil, fmt.Errorf("profile: unknown table %s", table)
	}
	col, ok := t.Column(column)
	if !ok {
		return nil, fmt.Errorf("profile: unknown column %s.%s", table, column)
	}
	key := profileKey{db: db, table: table, column: column, typ: col.Type, mode: mode}
	cs, _, err := p.get(ctx, key, func() (*ColumnStats, int, error) {
		if vec := db.Vector(table, column); vec != nil {
			if mode == ModeApprox {
				return FromVectorApprox(table, column, vec, p.workers), 0, nil
			}
			return FromVectorSharded(table, column, vec, p.workers), 0, nil
		}
		values, err := db.Column(table, column)
		if err != nil {
			return nil, 0, err
		}
		stats := Values(table, column, col.Type, values)
		if mode == ModeApprox {
			stats.Approx = exactApproxInfo() // row-path fallback: exact, marked
		}
		return stats, 0, nil
	})
	return cs, err
}

// ColumnCoerced returns the memoized profile of a column viewed through a
// different type: every value is coerced to typ, values that cannot be
// coerced are dropped and counted (the "incompatible" return), and the
// surviving values (including NULLs) are profiled under typ. This is the
// view the value-fit detector takes of a source column: how the data will
// look once integrated into the target attribute.
func (p *Profiler) ColumnCoerced(db *relational.Database, table, column string, typ relational.Type) (*ColumnStats, int, error) {
	return p.ColumnCoercedContext(context.Background(), db, table, column, typ)
}

// ColumnCoercedContext is ColumnCoerced with cancellation, under the
// Profiler's default mode.
func (p *Profiler) ColumnCoercedContext(ctx context.Context, db *relational.Database, table, column string, typ relational.Type) (*ColumnStats, int, error) {
	return p.ColumnCoercedContextMode(ctx, db, table, column, typ, p.mode)
}

// ColumnCoercedContextMode is ColumnCoercedContext with a per-request
// mode override.
func (p *Profiler) ColumnCoercedContextMode(ctx context.Context, db *relational.Database, table, column string, typ relational.Type, mode Mode) (*ColumnStats, int, error) {
	key := profileKey{db: db, table: table, column: column, typ: typ, coerced: true, mode: mode}
	return p.get(ctx, key, func() (*ColumnStats, int, error) {
		if vec := db.Vector(table, column); vec != nil {
			if mode == ModeApprox {
				cs, incompatible := FromVectorCoercedApprox(table, column, vec, typ, p.workers)
				return cs, incompatible, nil
			}
			cs, incompatible := FromVectorCoercedSharded(table, column, vec, typ, p.workers)
			return cs, incompatible, nil
		}
		values, err := db.Column(table, column)
		if err != nil {
			return nil, 0, err
		}
		coerced := make([]relational.Value, 0, len(values))
		incompatible := 0
		for _, v := range values {
			cv, err := relational.Coerce(typ, v)
			if err != nil {
				incompatible++
				continue
			}
			coerced = append(coerced, cv)
		}
		stats := Values(table, column, typ, coerced)
		if mode == ModeApprox {
			stats.Approx = exactApproxInfo() // row-path fallback: exact, marked
		}
		return stats, incompatible, nil
	})
}

// ProfileTable profiles every column of a table, fanning the columns out
// over the worker pool, and returns the profiles in schema column order.
func (p *Profiler) ProfileTable(db *relational.Database, table string) ([]*ColumnStats, error) {
	return p.ProfileTableContext(context.Background(), db, table)
}

// ProfileTableContext is ProfileTable with cancellation: workers stop
// picking up columns once the context is done and the context's error is
// returned.
func (p *Profiler) ProfileTableContext(ctx context.Context, db *relational.Database, table string) ([]*ColumnStats, error) {
	t := db.Schema.Table(table)
	if t == nil {
		return nil, fmt.Errorf("profile: unknown table %s", table)
	}
	out := make([]*ColumnStats, len(t.Columns))
	errs := make([]error, len(t.Columns))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for i, col := range t.Columns {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = p.ColumnContext(ctx, db, table, name)
		}(i, col.Name)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ProfileDatabase profiles every column of every table, bounded by the
// worker pool, and returns the profiles in schema order (tables in schema
// order, columns in declaration order).
func (p *Profiler) ProfileDatabase(db *relational.Database) ([]*ColumnStats, error) {
	return p.ProfileDatabaseContext(context.Background(), db)
}

// ProfileDatabaseContext is ProfileDatabase with cancellation.
func (p *Profiler) ProfileDatabaseContext(ctx context.Context, db *relational.Database) ([]*ColumnStats, error) {
	type slot struct {
		table, column string
	}
	var slots []slot
	for _, t := range db.Schema.Tables() {
		for _, c := range t.Columns {
			slots = append(slots, slot{table: t.Name, column: c.Name})
		}
	}
	out := make([]*ColumnStats, len(slots))
	errs := make([]error, len(slots))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for i, s := range slots {
		wg.Add(1)
		go func(i int, s slot) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = p.ColumnContext(ctx, db, s.table, s.column)
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Counters returns how many lookups were served from the cache (hits) and
// how many required profiling work (misses).
func (p *Profiler) Counters() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// DiskCounters splits the memo misses: diskHits were served from the
// durable store without recomputing, computes ran the profiling kernels.
// With no store installed diskHits is always zero.
func (p *Profiler) DiskCounters() (diskHits, computes int64) {
	return p.diskHits.Load(), p.computes.Load()
}

// HitRate returns the share of lookups served from the cache, or 0 before
// any lookup.
func (p *Profiler) HitRate() float64 {
	h, m := p.Counters()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of cached column profiles.
func (p *Profiler) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Reset drops every cached profile and zeroes the counters, releasing the
// references that pin profiled database instances in memory.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.entries = make(map[profileKey]*profileEntry)
	p.mu.Unlock()
	p.hits.Store(0)
	p.misses.Store(0)
	p.diskHits.Store(0)
	p.computes.Store(0)
}
