package profile

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"efes/internal/relational"
)

// The property tests in this file assert that the fused columnar kernels
// (kernels.go) are bit-identical to the seed row-path implementation
// (Values in stats.go), which is kept as the oracle: random typed columns
// with NULLs, ±Inf, NaN, -0, 1e16-magnitude values, and unicode strings
// are profiled through both paths — raw and through every coercion
// target — and every float is compared by bit pattern.

var allTypes = []relational.Type{
	relational.String, relational.Integer, relational.Float, relational.Bool, relational.Time,
}

// randomValue draws one cell for a column of the given type: NULLs, edge
// cases (infinities, NaN, negative zero, >2^53 magnitudes, unicode,
// parseable-as-other-type strings), and a duplicate-heavy tail so top-k
// count ties occur.
func randomValue(rng *rand.Rand, typ relational.Type) relational.Value {
	if rng.Float64() < 0.15 {
		return nil
	}
	switch typ {
	case relational.String:
		pool := []string{
			"", "abc", "héllo wörld", "日本語のテキスト", "123", " 42 ", "3.14",
			"1e16", "NaN", "Inf", "-0", "true", "True", "FALSE",
			"2021-01-02", "2021-01-02 13:14:15", "2021-01-02T13:14:15Z",
			"4:43", "Sweet Home Alabama", "215900", "x-y_z",
		}
		if rng.Float64() < 0.6 {
			return pool[rng.Intn(len(pool))]
		}
		runes := []rune("aβ9 é@日\t")
		n := rng.Intn(6)
		out := make([]rune, n)
		for i := range out {
			out[i] = runes[rng.Intn(len(runes))]
		}
		return string(out)
	case relational.Integer:
		pool := []int64{
			0, 1, -1, 42, 10000000000000000, -10000000000000000,
			(1 << 53) + 1, -(1 << 53) - 1, math.MaxInt64, math.MinInt64,
		}
		if rng.Float64() < 0.3 {
			return pool[rng.Intn(len(pool))]
		}
		return int64(rng.Intn(40)) // duplicate-heavy: forces count ties
	case relational.Float:
		pool := []float64{
			0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
			1e16, -1e16, 1e300, 3.5, 0.1, -2.25, float64((1 << 53) + 1),
		}
		if rng.Float64() < 0.3 {
			return pool[rng.Intn(len(pool))]
		}
		return float64(rng.Intn(40)) // integral: coercible to Integer
	case relational.Bool:
		return rng.Intn(2) == 0
	default: // Time
		base := time.Date(2021, 3, 14, 15, 9, 26, 0, time.UTC)
		zones := []*time.Location{time.UTC, time.FixedZone("X", 3600)}
		return base.Add(time.Duration(rng.Intn(5)) * time.Hour).
			Add(time.Duration(rng.Intn(3)) * 500 * time.Millisecond).
			In(zones[rng.Intn(len(zones))])
	}
}

// randomDB builds a one-column instance of the given type with n rows.
func randomDB(t *testing.T, rng *rand.Rand, typ relational.Type, n int) *relational.Database {
	t.Helper()
	s := relational.NewSchema("prop")
	tab, err := relational.NewTable("t", relational.Column{Name: "c", Type: typ})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := s.AddTable(tab); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	db := relational.NewDatabase(s)
	for i := 0; i < n; i++ {
		db.MustInsert("t", randomValue(rng, typ))
	}
	return db
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// statsEqual compares two profiles bit-exactly (floats by bit pattern, so
// NaN-valued statistics compare too) and reports every differing field.
func statsEqual(t *testing.T, ctx string, want, got *ColumnStats) {
	t.Helper()
	if want.Table != got.Table || want.Column != got.Column || want.Type != got.Type {
		t.Errorf("%s: identity: want %s.%s %v, got %s.%s %v", ctx,
			want.Table, want.Column, want.Type, got.Table, got.Column, got.Type)
	}
	if want.Rows != got.Rows || want.Nulls != got.Nulls || want.Distinct != got.Distinct {
		t.Errorf("%s: rows/nulls/distinct: want %d/%d/%d, got %d/%d/%d", ctx,
			want.Rows, want.Nulls, want.Distinct, got.Rows, got.Nulls, got.Distinct)
	}
	if !bitsEq(want.Fill, got.Fill) {
		t.Errorf("%s: fill: want %x, got %x", ctx, want.Fill, got.Fill)
	}
	if !bitsEq(want.Constancy, got.Constancy) {
		t.Errorf("%s: constancy: want %x, got %x", ctx, want.Constancy, got.Constancy)
	}
	vcsEqual(t, ctx+": patterns", want.Patterns, got.Patterns)
	vcsEqual(t, ctx+": topk", want.TopK, got.TopK)
	if !bitsEq(want.TopKCoverage, got.TopKCoverage) {
		t.Errorf("%s: topk coverage: want %x, got %x", ctx, want.TopKCoverage, got.TopKCoverage)
	}
	if (want.CharHist == nil) != (got.CharHist == nil) || len(want.CharHist) != len(got.CharHist) {
		t.Errorf("%s: charhist shape: want %d (nil=%v), got %d (nil=%v)", ctx,
			len(want.CharHist), want.CharHist == nil, len(got.CharHist), got.CharHist == nil)
	} else {
		for r, f := range want.CharHist {
			if !bitsEq(f, got.CharHist[r]) {
				t.Errorf("%s: charhist[%q]: want %x, got %x", ctx, r, f, got.CharHist[r])
			}
		}
	}
	if !bitsEq(want.StringLength.Mean, got.StringLength.Mean) || !bitsEq(want.StringLength.StdDev, got.StringLength.StdDev) {
		t.Errorf("%s: string length: want %+v, got %+v", ctx, want.StringLength, got.StringLength)
	}
	if want.HasNumeric != got.HasNumeric {
		t.Errorf("%s: has numeric: want %v, got %v", ctx, want.HasNumeric, got.HasNumeric)
	}
	if !bitsEq(want.Mean.Mean, got.Mean.Mean) || !bitsEq(want.Mean.StdDev, got.Mean.StdDev) {
		t.Errorf("%s: mean: want %+v, got %+v", ctx, want.Mean, got.Mean)
	}
	if !bitsEq(want.Min, got.Min) || !bitsEq(want.Max, got.Max) {
		t.Errorf("%s: range: want [%x,%x], got [%x,%x]", ctx, want.Min, want.Max, got.Min, got.Max)
	}
	if !bitsEq(want.NumHist.Min, got.NumHist.Min) || !bitsEq(want.NumHist.Max, got.NumHist.Max) {
		t.Errorf("%s: hist bounds: want [%x,%x], got [%x,%x]", ctx,
			want.NumHist.Min, want.NumHist.Max, got.NumHist.Min, got.NumHist.Max)
	}
	if (want.NumHist.Buckets == nil) != (got.NumHist.Buckets == nil) || len(want.NumHist.Buckets) != len(got.NumHist.Buckets) {
		t.Errorf("%s: hist shape: want %d buckets (nil=%v), got %d (nil=%v)", ctx,
			len(want.NumHist.Buckets), want.NumHist.Buckets == nil,
			len(got.NumHist.Buckets), got.NumHist.Buckets == nil)
	} else {
		for i := range want.NumHist.Buckets {
			if want.NumHist.Buckets[i] != got.NumHist.Buckets[i] {
				t.Errorf("%s: hist bucket %d: want %d, got %d", ctx, i, want.NumHist.Buckets[i], got.NumHist.Buckets[i])
			}
		}
	}
}

func vcsEqual(t *testing.T, ctx string, want, got []ValueCount) {
	t.Helper()
	if (want == nil) != (got == nil) || len(want) != len(got) {
		t.Errorf("%s: shape: want %d (nil=%v), got %d (nil=%v)", ctx, len(want), want == nil, len(got), got == nil)
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s[%d]: want %+v, got %+v", ctx, i, want[i], got[i])
		}
	}
}

// oracleCoerced replicates the seed coerced-profile closure: coerce every
// value, drop failures, profile survivors through the row path.
func oracleCoerced(table, column string, typ relational.Type, values []relational.Value) (*ColumnStats, int) {
	coerced := make([]relational.Value, 0, len(values))
	incompatible := 0
	for _, v := range values {
		cv, err := relational.Coerce(typ, v)
		if err != nil {
			incompatible++
			continue
		}
		coerced = append(coerced, cv)
	}
	return Values(table, column, typ, coerced), incompatible
}

func TestKernelsBitIdenticalToRowPath(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, typ := range allTypes {
			for _, n := range []int{0, 1, 7, 400} {
				db := randomDB(t, rng, typ, n)
				values := db.MustColumn("t", "c")
				vec := db.Vector("t", "c")
				if vec == nil {
					t.Fatal("Vector returned nil for known column")
				}
				ctx := typ.String() + "/raw"
				statsEqual(t, ctx, Values("t", "c", typ, values), FromVector("t", "c", vec))
				for _, dst := range allTypes {
					want, wantInc := oracleCoerced("t", "c", dst, values)
					got, gotInc := FromVectorCoerced("t", "c", vec, dst)
					cctx := typ.String() + "->" + dst.String()
					if wantInc != gotInc {
						t.Errorf("%s: incompatible: want %d, got %d", cctx, wantInc, gotInc)
					}
					statsEqual(t, cctx, want, got)
				}
			}
		}
	}
}

// TestKernelsAfterMutations exercises the incremental maintenance path:
// vectors are materialized first, then the instance is mutated through
// Insert/Update/Delete, and the kernels must still agree with the row
// path bit for bit.
func TestKernelsAfterMutations(t *testing.T) {
	for seed := int64(10); seed <= 13; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, typ := range allTypes {
			db := randomDB(t, rng, typ, 120)
			if db.Vector("t", "c") == nil { // materialize before mutating
				t.Fatal("Vector returned nil")
			}
			for step := 0; step < 60; step++ {
				n := db.NumRows("t")
				switch op := rng.Intn(4); {
				case op == 0 || n == 0:
					db.MustInsert("t", randomValue(rng, typ))
				case op == 1:
					if err := db.Update("t", rng.Intn(n), "c", randomValue(rng, typ)); err != nil {
						t.Fatalf("Update: %v", err)
					}
				case op == 2:
					db.Delete("t", rng.Intn(n))
				default:
					db.Delete("t", rng.Intn(n), rng.Intn(n), n+5) // dups and out-of-range are ignored
				}
			}
			values := db.MustColumn("t", "c")
			vec := db.Vector("t", "c")
			statsEqual(t, typ.String()+"/mutated", Values("t", "c", typ, values), FromVector("t", "c", vec))
			// The memoized sorted distinct must match the row path's too.
			distinct, _, err := db.DistinctValues("t", "c")
			if err != nil {
				t.Fatalf("DistinctValues: %v", err)
			}
			sorted := vec.SortedDistinct()
			if len(distinct) != len(sorted) {
				t.Fatalf("%v: distinct count: row path %d, vector %d", typ, len(distinct), len(sorted))
			}
			for i, v := range distinct {
				if relational.FormatValue(v) != sorted[i] {
					t.Errorf("%v: distinct[%d]: row path %q, vector %q", typ, i, relational.FormatValue(v), sorted[i])
				}
			}
		}
	}
}
