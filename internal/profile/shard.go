package profile

import (
	"cmp"
	"math"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"efes/internal/relational"
)

// This file holds the sharded exact kernels: the same fused statistics as
// kernels.go, computed as mergeable per-chunk partial summaries by a pool
// of workers and reduced in chunk index order. The bit-identity argument
// extends the one in kernels.go:
//
//   - Per-chunk partials hold only order-insensitive aggregates (sorted
//     value runs for the numeric kernels, integer count maps elsewhere,
//     true/false tallies, char tallies) plus the chunk's dense row-order
//     float values. Merging sums the integer counts of equal values (any
//     order — integer addition is exact) and concatenates the dense
//     vectors in chunk index order, reproducing the exact row-order
//     sequence the seed kernels build.
//   - Every float reduction (distOf, minMax, histogramOf, the two-pass
//     string-length loop) then runs sequentially over the merged data
//     with the seed's own helpers, so the float operation sequence is
//     identical by construction — at any worker count, including one.
//   - The top-k selection is order-independent (strict total order,
//     bounded heap; see kernels.go), so merging per-shard survivors and
//     reselecting yields the seed's exact set.
//
// Workers race only on disjoint per-chunk slots (one slot per chunk,
// preallocated before the fan-out), so the kernels are race-clean without
// locks; shardRun hands out chunk indexes via an atomic counter.

// chunkCount returns the number of relational.ChunkSize spans covering n
// elements.
func chunkCount(n int) int {
	return (n + relational.ChunkSize - 1) / relational.ChunkSize
}

// chunkSpan returns the half-open element range [lo, hi) of chunk k.
func chunkSpan(k, n int) (lo, hi int) {
	lo = k * relational.ChunkSize
	hi = lo + relational.ChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// shardRun invokes fn(k) for every chunk index in [0, chunks), fanning
// out over up to workers goroutines. fn must write only to its own
// chunk's slot. With one worker (or one chunk) everything runs inline on
// the calling goroutine.
func shardRun(chunks, workers int, fn func(k int)) {
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for k := 0; k < chunks; k++ {
			fn(k)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= chunks {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
}

// FromVectorSharded profiles a column from its columnar representation
// with per-chunk kernels fanned out over workers goroutines. The result
// is bit-identical to FromVector (and therefore to the row path) at any
// worker count.
func FromVectorSharded(table, column string, vec *relational.ColumnVector, workers int) *ColumnStats {
	cs := newStats(table, column, vec.Type(), vec.Len(), vec.NullCount())
	switch vec.Type() {
	case relational.String:
		stringKernelDictSharded(cs, vec.Dict(), vec.Counts(), vec.Codes(), vec.Nulls(), workers)
	case relational.Integer:
		intKernelSharded(cs, vec.Ints(), vec.Nulls(), workers)
	case relational.Float:
		floatKernelSharded(cs, vec.Floats(), vec.Nulls(), workers)
	case relational.Bool:
		boolKernelSharded(cs, vec.Bools(), vec.Nulls(), workers)
	case relational.Time:
		timeKernelSharded(cs, vec.Times(), vec.Nulls(), workers)
	}
	return cs
}

// FromVectorCoercedSharded is FromVectorCoerced with sharded kernels:
// bit-identical to it (and the row path) at any worker count. The rare
// fallback combinations (e.g. Time rendered to String) stay sequential —
// they are never hot.
func FromVectorCoercedSharded(table, column string, vec *relational.ColumnVector, typ relational.Type, workers int) (*ColumnStats, int) {
	src := vec.Type()
	if typ == src {
		return FromVectorSharded(table, column, vec, workers), 0
	}
	if impossibleCoercion(src, typ) {
		return Values(table, column, typ, make([]relational.Value, vec.NullCount())), vec.Len() - vec.NullCount()
	}
	switch src {
	case relational.String:
		return coercedFromStringSharded(table, column, vec, typ, workers)
	case relational.Integer:
		switch typ {
		case relational.Float:
			return intToFloatSharded(table, column, vec, workers), 0
		case relational.String:
			return intToStringSharded(table, column, vec, workers), 0
		}
	case relational.Float:
		switch typ {
		case relational.Integer:
			return floatToIntSharded(table, column, vec, workers)
		case relational.String:
			return floatToStringSharded(table, column, vec, workers), 0
		}
	case relational.Bool:
		if typ == relational.String {
			return boolToString(table, column, vec), 0 // two-entry dict: nothing to shard
		}
	}
	return coercedFallback(table, column, vec, typ)
}

// concatChunks stitches per-chunk dense vectors back into one row-order
// vector (chunk index order = row order).
func concatChunks(parts [][]float64, total int) []float64 {
	xs := make([]float64, 0, total)
	for _, p := range parts {
		xs = append(xs, p...)
	}
	return xs
}

// valueRuns is one chunk's sorted run-length summary of a typed column:
// distinct values in ascending order with their in-chunk counts. Runs
// are the exact mode's mergeable per-chunk summary — merging is a
// sequential multi-way merge that sums the counts of equal heads, so no
// global hash table is ever built. Counts are order-independent, so any
// merge order yields the same totals; the finish accumulators (distinct
// count, count-multiplicity map, bounded top-k under a strict total
// order) are themselves feed-order-independent, which is what makes the
// whole pipeline bit-identical to the single-pass map kernels.
type valueRuns[K cmp.Ordered] struct {
	vals []K
	cnts []int32
}

// mergeRuns walks all chunks' sorted runs in ascending value order and
// emits each distinct value once with its summed count. A small binary
// min-heap over the chunk cursors keeps the merge O(total runs × log
// chunks) with strictly sequential memory access — the cache-friendly
// replacement for folding per-chunk hash maps into one giant map.
//
//efes:hot
func mergeRuns[K cmp.Ordered](parts []valueRuns[K], emit func(v K, n int)) {
	heap := make([]int32, 0, len(parts)) //efes:bounded one entry per chunk
	pos := make([]int32, len(parts))
	head := func(p int32) K { return parts[p].vals[pos[p]] }
	less := func(a, b int32) bool { return head(a) < head(b) }
	siftDown := func(i int32) {
		n := int32(len(heap))
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < n && less(heap[l], heap[min]) {
				min = l
			}
			if r < n && less(heap[r], heap[min]) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for p := range parts {
		if len(parts[p].vals) > 0 {
			heap = append(heap, int32(p))
		}
	}
	for i := int32(len(heap))/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		v := head(heap[0])
		n := 0
		for len(heap) > 0 && head(heap[0]) == v {
			p := heap[0]
			n += int(parts[p].cnts[pos[p]])
			pos[p]++
			if int(pos[p]) == len(parts[p].vals) {
				heap[0] = heap[len(heap)-1]
				heap = heap[:len(heap)-1]
			}
			siftDown(0)
		}
		emit(v, n)
	}
}

// sortedRuns sorts a chunk's values in place and run-length encodes
// them: vals' prefix keeps one entry per distinct value, cnts holds the
// matching run lengths.
//
//efes:hot
func sortedRuns[K cmp.Ordered](vals []K) valueRuns[K] {
	slices.Sort(vals)
	cnts := make([]int32, 0, len(vals))
	w := 0
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		vals[w] = vals[i]
		cnts = append(cnts, int32(j-i))
		w++
		i = j
	}
	return valueRuns[K]{vals: vals[:w], cnts: cnts}
}

// intRuns builds one chunk's ascending runs, choosing between two
// strategies by the chunk's value range: when the range is small
// relative to the chunk length (id-like, foreign-key-like and code-like
// columns), a dense counting array replaces the sort — one sequential
// counting pass plus one emission pass instead of an O(n log n) sort.
// Both strategies produce identical runs, so the choice (made per chunk
// from the data alone, never from the worker count) cannot influence
// output.
//
//efes:hot
func intRuns(vals []int64) valueRuns[int64] {
	if len(vals) == 0 {
		return valueRuns[int64]{}
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	// uint64 subtraction is exact for any int64 pair under two's
	// complement, so the span test is overflow-safe.
	if span := uint64(mx) - uint64(mn); span < uint64(4*len(vals)) {
		cnt := make([]int32, span+1)
		for _, v := range vals {
			cnt[uint64(v)-uint64(mn)]++
		}
		cnts := make([]int32, 0, len(vals))
		w := 0
		for i, c := range cnt {
			if c != 0 {
				vals[w] = mn + int64(i)
				cnts = append(cnts, c)
				w++
			}
		}
		return valueRuns[int64]{vals: vals[:w], cnts: cnts}
	}
	return sortedRuns(vals)
}

// finishIntRuns feeds the merged runs into the same accumulators
// finishInts drives off the single-pass count map — bit-identical
// output with no global hash table.
//
//efes:hot
func finishIntRuns(cs *ColumnStats, runs []valueRuns[int64], nonNull int) {
	mult := make(map[int]int)
	tk := newTopK()
	distinct := 0
	var cur int64
	lazy := func() string { return strconv.FormatInt(cur, 10) }
	mergeRuns(runs, func(v int64, n int) {
		distinct++
		mult[n]++
		cur = v
		tk.consider(n, lazy)
	})
	cs.Distinct = distinct
	cs.Constancy = constancyFromMult(mult, distinct, nonNull)
	finishTopK(cs, tk, nonNull)
}

// intKernelSharded is intKernel over per-chunk partials: each chunk
// reduces its values to ascending runs (intRuns) and the run merge
// recomputes the exact statistics. With no NULLs each chunk writes its
// span of the shared dense vector in place — disjoint [lo, hi) windows,
// so the fan-out stays race-clean without the per-chunk copies.
//
//efes:hot
func intKernelSharded(cs *ColumnStats, ints []int64, nulls *relational.Bitmap, workers int) {
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(ints))
	runs := make([]valueRuns[int64], chunks)
	if cs.Nulls == 0 {
		xs := make([]float64, len(ints))
		shardRun(chunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(ints))
			for i := lo; i < hi; i++ {
				xs[i] = float64(ints[i])
			}
			vals := make([]int64, hi-lo)
			copy(vals, ints[lo:hi])
			runs[k] = intRuns(vals)
		})
		finishIntRuns(cs, runs, nonNull)
		finishNumeric(cs, xs)
		return
	}
	xss := make([][]float64, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(ints))
		vals := make([]int64, 0, hi-lo)
		xs := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			vals = append(vals, ints[i])
			xs = append(xs, float64(ints[i]))
		}
		runs[k] = intRuns(vals)
		xss[k] = xs
	})
	finishIntRuns(cs, runs, nonNull)
	finishNumeric(cs, concatChunks(xss, nonNull))
}

// floatKernelSharded is floatKernel over per-chunk partials, with the
// same sorted-run summaries as intKernelSharded (keys are canonical bit
// patterns). With no NULLs the typed vector itself is the dense
// row-order vector, exactly as in the single-pass kernel.
//
//efes:hot
func floatKernelSharded(cs *ColumnStats, floats []float64, nulls *relational.Bitmap, workers int) {
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(floats))
	runs := make([]valueRuns[uint64], chunks)
	var xss [][]float64
	if cs.Nulls > 0 {
		xss = make([][]float64, chunks)
	}
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(floats))
		keys := make([]uint64, 0, hi-lo)
		if xss == nil {
			// No NULLs: the typed vector itself serves as the dense
			// row-order vector, so only the keys are collected.
			for i := lo; i < hi; i++ {
				keys = append(keys, floatKey(floats[i]))
			}
			runs[k] = sortedRuns(keys)
			return
		}
		xs := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			keys = append(keys, floatKey(floats[i]))
			xs = append(xs, floats[i])
		}
		runs[k] = sortedRuns(keys)
		xss[k] = xs
	})
	mult := make(map[int]int)
	tk := newTopK()
	distinct := 0
	var cur uint64
	lazy := func() string { return strconv.FormatFloat(math.Float64frombits(cur), 'g', -1, 64) }
	mergeRuns(runs, func(b uint64, n int) {
		distinct++
		mult[n]++
		cur = b
		tk.consider(n, lazy)
	})
	cs.Distinct = distinct
	cs.Constancy = constancyFromMult(mult, distinct, nonNull)
	finishTopK(cs, tk, nonNull)
	if xss == nil {
		finishNumeric(cs, floats)
	} else {
		finishNumeric(cs, concatChunks(xss, nonNull))
	}
}

// boolKernelSharded is boolKernel over per-chunk partials.
//
//efes:hot
func boolKernelSharded(cs *ColumnStats, bools []bool, nulls *relational.Bitmap, workers int) {
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(bools))
	trues := make([]int, chunks)
	falses := make([]int, chunks)
	xss := make([][]float64, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(bools))
		xs := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			if bools[i] {
				trues[k]++
				xs = append(xs, 1)
			} else {
				falses[k]++
				xs = append(xs, 0)
			}
		}
		xss[k] = xs
	})
	nTrue, nFalse := 0, 0
	for k := 0; k < chunks; k++ {
		nTrue += trues[k]
		nFalse += falses[k]
	}
	finishBools(cs, nTrue, nFalse, nonNull)
	finishNumeric(cs, concatChunks(xss, nonNull))
}

// timeKernelSharded is timeKernel over per-chunk partials.
//
//efes:hot
func timeKernelSharded(cs *ColumnStats, times []time.Time, nulls *relational.Bitmap, workers int) {
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(times))
	cnts := make([]map[string]int, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(times))
		cnt := make(map[string]int)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			cnt[times[i].Format(time.RFC3339)]++
		}
		cnts[k] = cnt
	})
	cnt := make(map[string]int)
	for _, p := range cnts {
		for s, n := range p {
			cnt[s] += n
		}
	}
	finishStringCounts(cs, cnt, nonNull)
}

// stringPartial is one dictionary shard's contribution to the fused
// string kernel.
type stringPartial struct {
	patterns   map[string]int
	charCounts map[rune]int
	totalChars int
	mult       map[int]int
	distinct   int
	tk         *topK
}

// stringKernelDictSharded is stringKernelDict sharded over dictionary
// entries: each worker owns a contiguous dict range (disjoint runeLens
// writes), partial tallies merge by integer sums, and the row-order
// two-pass string-length accumulation stays sequential so its float
// sequence matches the seed exactly.
//
//efes:hot
func stringKernelDictSharded(cs *ColumnStats, strs []string, occ []int, codes []int32, nulls *relational.Bitmap, workers int) {
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(strs))
	runeLens := make([]float64, len(strs))
	parts := make([]stringPartial, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(strs))
		p := stringPartial{
			patterns:   make(map[string]int),
			charCounts: make(map[rune]int),
			mult:       make(map[int]int),
			tk:         newTopK(),
		}
		for c := lo; c < hi; c++ {
			n := occ[c]
			if n == 0 {
				continue // dead dictionary entry
			}
			p.distinct++
			p.mult[n]++
			p.tk.considerString(n, strs[c])
			p.patterns[Pattern(strs[c])] += n
			rl := 0
			for _, r := range strs[c] {
				p.charCounts[r] += n
				p.totalChars += n
				rl++
			}
			runeLens[c] = float64(rl)
		}
		parts[k] = p
	})
	patterns := make(map[string]int)
	charCounts := make(map[rune]int)
	mult := make(map[int]int)
	totalChars, distinct := 0, 0
	tk := newTopK()
	for _, p := range parts {
		distinct += p.distinct
		totalChars += p.totalChars
		for s, n := range p.patterns {
			patterns[s] += n
		}
		for r, n := range p.charCounts {
			charCounts[r] += n
		}
		for c, n := range p.mult {
			mult[c] += n
		}
		for _, vc := range p.tk.h {
			tk.considerString(vc.Count, vc.Value)
		}
	}
	cs.Distinct = distinct
	cs.Constancy = constancyFromMult(mult, distinct, nonNull)
	cs.Patterns = sortedCounts(patterns)
	if totalChars > 0 {
		cs.CharHist = make(map[rune]float64, len(charCounts))
		for r, n := range charCounts {
			cs.CharHist[r] = float64(n) / float64(totalChars)
		}
	}
	if nonNull > 0 {
		sum := 0.0
		for i, c := range codes {
			if nulls.Get(i) {
				continue
			}
			sum += runeLens[c]
		}
		mean := sum / float64(nonNull)
		ss := 0.0
		for i, c := range codes {
			if nulls.Get(i) {
				continue
			}
			d := runeLens[c] - mean
			ss += d * d
		}
		cs.StringLength = Dist{Mean: mean, StdDev: math.Sqrt(ss / float64(nonNull))}
	}
	finishTopK(cs, tk, nonNull)
}

// coercedFromStringSharded is coercedFromString with the per-dict-entry
// parse and tally loops sharded; the dense row-order vector is built from
// per-chunk slices concatenated in chunk order.
//
//efes:hot
func coercedFromStringSharded(table, column string, vec *relational.ColumnVector, typ relational.Type, workers int) (*ColumnStats, int) {
	dict, occ, codes, nulls := vec.Dict(), vec.Counts(), vec.Codes(), vec.Nulls()
	dictChunks := chunkCount(len(dict))
	ok := make([]bool, len(dict))
	bad := make([]int, dictChunks)

	switch typ {
	case relational.Integer:
		vals := make([]int64, len(dict))
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			for c := lo; c < hi; c++ {
				if occ[c] == 0 {
					continue
				}
				n, err := relational.ParseInt(dict[c])
				if err != nil {
					bad[k] += occ[c]
					continue
				}
				vals[c], ok[c] = n, true
			}
		})
		incompatible := sumInts(bad)
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		cnts := make([]map[int64]int, dictChunks)
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			cnt := make(map[int64]int)
			for c := lo; c < hi; c++ {
				if occ[c] > 0 && ok[c] {
					cnt[vals[c]] += occ[c]
				}
			}
			cnts[k] = cnt
		})
		cnt := make(map[int64]int)
		for _, p := range cnts {
			for x, n := range p {
				cnt[x] += n
			}
		}
		xs := denseFromCodes(codes, nulls, ok, nonNull, workers, func(c int32) float64 { return float64(vals[c]) })
		finishInts(cs, cnt, nonNull)
		finishNumeric(cs, xs)
		return cs, incompatible
	case relational.Float:
		vals := make([]float64, len(dict))
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			for c := lo; c < hi; c++ {
				if occ[c] == 0 {
					continue
				}
				f, err := relational.ParseFloat(dict[c])
				if err != nil {
					bad[k] += occ[c]
					continue
				}
				vals[c], ok[c] = f, true
			}
		})
		incompatible := sumInts(bad)
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		cnts := make([]map[uint64]int, dictChunks)
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			cnt := make(map[uint64]int)
			for c := lo; c < hi; c++ {
				if occ[c] > 0 && ok[c] {
					cnt[floatKey(vals[c])] += occ[c]
				}
			}
			cnts[k] = cnt
		})
		cnt := make(map[uint64]int)
		for _, p := range cnts {
			for b, n := range p {
				cnt[b] += n
			}
		}
		xs := denseFromCodes(codes, nulls, ok, nonNull, workers, func(c int32) float64 { return vals[c] })
		finishFloats(cs, cnt, nonNull)
		finishNumeric(cs, xs)
		return cs, incompatible
	case relational.Bool:
		vals := make([]bool, len(dict))
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			for c := lo; c < hi; c++ {
				if occ[c] == 0 {
					continue
				}
				b, err := relational.ParseBool(dict[c])
				if err != nil {
					bad[k] += occ[c]
					continue
				}
				vals[c], ok[c] = b, true
			}
		})
		incompatible := sumInts(bad)
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		nTrue, nFalse := 0, 0
		for c := range dict {
			if occ[c] == 0 || !ok[c] {
				continue
			}
			if vals[c] {
				nTrue += occ[c]
			} else {
				nFalse += occ[c]
			}
		}
		xs := denseFromCodes(codes, nulls, ok, nonNull, workers, func(c int32) float64 {
			if vals[c] {
				return 1
			}
			return 0
		})
		finishBools(cs, nTrue, nFalse, nonNull)
		finishNumeric(cs, xs)
		return cs, incompatible
	default: // relational.Time
		strs := make([]string, len(dict))
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			for c := lo; c < hi; c++ {
				if occ[c] == 0 {
					continue
				}
				ts, err := relational.ParseTime(dict[c])
				if err != nil {
					bad[k] += occ[c]
					continue
				}
				strs[c], ok[c] = relational.FormatTime(ts), true
			}
		})
		incompatible := sumInts(bad)
		cs := newStats(table, column, typ, vec.Len()-incompatible, vec.NullCount())
		nonNull := cs.Rows - cs.Nulls
		cnts := make([]map[string]int, dictChunks)
		shardRun(dictChunks, workers, func(k int) {
			lo, hi := chunkSpan(k, len(dict))
			cnt := make(map[string]int)
			for c := lo; c < hi; c++ {
				if occ[c] > 0 && ok[c] {
					cnt[strs[c]] += occ[c]
				}
			}
			cnts[k] = cnt
		})
		cnt := make(map[string]int)
		for _, p := range cnts {
			for s, n := range p {
				cnt[s] += n
			}
		}
		finishStringCounts(cs, cnt, nonNull)
		return cs, incompatible
	}
}

// denseFromCodes builds the dense row-order float vector of a coerced
// string column (rows whose dict entry failed to parse are dropped), one
// chunk of the code vector per shard, concatenated in chunk order.
//
//efes:hot
func denseFromCodes(codes []int32, nulls *relational.Bitmap, ok []bool, nonNull, workers int, val func(int32) float64) []float64 {
	chunks := chunkCount(len(codes))
	xss := make([][]float64, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(codes))
		xs := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) || !ok[codes[i]] {
				continue
			}
			xs = append(xs, val(codes[i]))
		}
		xss[k] = xs
	})
	return concatChunks(xss, nonNull)
}

// sumInts totals per-shard integer tallies.
func sumInts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// intToFloatSharded is intToFloat over per-chunk partials.
//
//efes:hot
func intToFloatSharded(table, column string, vec *relational.ColumnVector, workers int) *ColumnStats {
	ints, nulls := vec.Ints(), vec.Nulls()
	cs := newStats(table, column, relational.Float, vec.Len(), vec.NullCount())
	nonNull := cs.Rows - cs.Nulls
	chunks := chunkCount(len(ints))
	cnts := make([]map[uint64]int, chunks)
	xss := make([][]float64, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(ints))
		cnt := make(map[uint64]int)
		xs := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			f := float64(ints[i]) // may collapse >2^53 magnitudes, exactly as Coerce does
			cnt[floatKey(f)]++
			xs = append(xs, f)
		}
		cnts[k], xss[k] = cnt, xs
	})
	cnt := make(map[uint64]int)
	for _, p := range cnts {
		for b, n := range p {
			cnt[b] += n
		}
	}
	finishFloats(cs, cnt, nonNull)
	finishNumeric(cs, concatChunks(xss, nonNull))
	return cs
}

// floatToIntSharded is floatToInt over per-chunk partials.
//
//efes:hot
func floatToIntSharded(table, column string, vec *relational.ColumnVector, workers int) (*ColumnStats, int) {
	floats, nulls := vec.Floats(), vec.Nulls()
	chunks := chunkCount(len(floats))
	cnts := make([]map[int64]int, chunks)
	xss := make([][]float64, chunks)
	bad := make([]int, chunks)
	shardRun(chunks, workers, func(k int) {
		lo, hi := chunkSpan(k, len(floats))
		cnt := make(map[int64]int)
		xs := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if nulls.Get(i) {
				continue
			}
			x := floats[i]
			if x != math.Trunc(x) || math.IsInf(x, 0) {
				bad[k]++
				continue
			}
			v := int64(x)
			cnt[v]++
			xs = append(xs, float64(v))
		}
		cnts[k], xss[k] = cnt, xs
	})
	incompatible := sumInts(bad)
	cnt := make(map[int64]int)
	total := 0
	for _, p := range cnts {
		for x, n := range p {
			cnt[x] += n
		}
	}
	for _, xs := range xss {
		total += len(xs)
	}
	cs := newStats(table, column, relational.Integer, vec.Len()-incompatible, vec.NullCount())
	finishInts(cs, cnt, cs.Rows-cs.Nulls)
	finishNumeric(cs, concatChunks(xss, total))
	return cs, incompatible
}

// intToStringSharded renders the derived dictionary sequentially (code
// assignment follows first occurrence in row order) and runs the sharded
// string kernel over it.
//
//efes:hot
func intToStringSharded(table, column string, vec *relational.ColumnVector, workers int) *ColumnStats {
	ints, nulls := vec.Ints(), vec.Nulls()
	nonNull := vec.Len() - vec.NullCount()
	m := make(map[int64]int32)
	strs := make([]string, 0, nonNull)
	occ := make([]int, 0, nonNull)
	codes := make([]int32, len(ints))
	for i, x := range ints {
		if nulls.Get(i) {
			continue
		}
		c, seen := m[x]
		if !seen {
			c = int32(len(strs))
			m[x] = c
			strs = append(strs, strconv.FormatInt(x, 10))
			occ = append(occ, 0)
		}
		occ[c]++
		codes[i] = c
	}
	cs := newStats(table, column, relational.String, vec.Len(), vec.NullCount())
	stringKernelDictSharded(cs, strs, occ, codes, nulls, workers)
	return cs
}

// floatToStringSharded is intToStringSharded for float sources.
//
//efes:hot
func floatToStringSharded(table, column string, vec *relational.ColumnVector, workers int) *ColumnStats {
	floats, nulls := vec.Floats(), vec.Nulls()
	nonNull := vec.Len() - vec.NullCount()
	m := make(map[uint64]int32)
	strs := make([]string, 0, nonNull)
	occ := make([]int, 0, nonNull)
	codes := make([]int32, len(floats))
	for i, x := range floats {
		if nulls.Get(i) {
			continue
		}
		k := floatKey(x)
		c, seen := m[k]
		if !seen {
			c = int32(len(strs))
			m[k] = c
			strs = append(strs, strconv.FormatFloat(x, 'g', -1, 64))
			occ = append(occ, 0)
		}
		occ[c]++
		codes[i] = c
	}
	cs := newStats(table, column, relational.String, vec.Len(), vec.NullCount())
	stringKernelDictSharded(cs, strs, occ, codes, nulls, workers)
	return cs
}
