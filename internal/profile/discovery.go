package profile

import (
	"sort"
	"strings"

	"efes/internal/relational"
)

// Discovery holds constraints reverse-engineered from an instance: the
// paper's §3.1 completeness requirement ("techniques for schema reverse
// engineering and data profiling can reconstruct missing schema
// descriptions and constraints from the data").
type Discovery struct {
	// NotNull lists columns without any NULL value.
	NotNull []relational.ColumnRef
	// Unique lists columns whose non-NULL values are all distinct.
	Unique []relational.ColumnRef
	// PrimaryKeys maps each table to its best single-column key
	// candidate (unique, not-null, name-biased), if any.
	PrimaryKeys map[string]relational.ColumnRef
	// Inclusions lists unary inclusion dependencies: every non-NULL
	// value of Dependent appears in Referenced.
	Inclusions []Inclusion
}

// Inclusion is a unary inclusion dependency Dependent ⊆ Referenced.
type Inclusion struct {
	Dependent  relational.ColumnRef
	Referenced relational.ColumnRef
}

// MinRowsForDiscovery guards against vacuous discoveries on tiny tables:
// a table with fewer rows provides too little evidence for uniqueness or
// inclusion dependencies.
const MinRowsForDiscovery = 1

// Discover reverse-engineers constraints from the instance. Only
// single-column constraints are discovered; this matches the constraint
// classes expressible in CSGs (§4.1) that the framework consumes.
func Discover(db *relational.Database) *Discovery {
	d := &Discovery{PrimaryKeys: make(map[string]relational.ColumnRef)}
	type colInfo struct {
		ref relational.ColumnRef
		typ relational.Type
		// distinct is the column's sorted distinct rendering
		// (ColumnVector.SortedDistinct): lexicographically ordered and
		// duplicate-free, the substrate of the inclusion merge-joins.
		distinct []string
		unique   bool
		notNull  bool
	}
	var cols []*colInfo
	for _, t := range db.Schema.Tables() {
		if db.NumRows(t.Name) < MinRowsForDiscovery {
			continue
		}
		vecs := db.Vectors(t.Name)
		for ci, c := range t.Columns {
			vec := vecs[ci]
			nonNull := vec.Len() - vec.NullCount()
			distinct := vec.SortedDistinct()
			cols = append(cols, &colInfo{
				ref:      relational.ColumnRef{Table: t.Name, Column: c.Name},
				typ:      c.Type,
				distinct: distinct,
				unique:   nonNull > 0 && len(distinct) == nonNull,
				notNull:  vec.NullCount() == 0,
			})
		}
	}
	for _, info := range cols {
		if info.notNull {
			d.NotNull = append(d.NotNull, info.ref)
		}
		if info.unique {
			d.Unique = append(d.Unique, info.ref)
		}
	}
	// Primary key candidates: unique AND not-null; prefer id-ish names,
	// then earlier columns.
	byTable := make(map[string][]*colInfo)
	for _, info := range cols {
		if info.unique && info.notNull {
			byTable[info.ref.Table] = append(byTable[info.ref.Table], info)
		}
	}
	for table, candidates := range byTable {
		sort.Slice(candidates, func(i, j int) bool {
			si, sj := keyNameScore(candidates[i].ref.Column), keyNameScore(candidates[j].ref.Column)
			if si != sj {
				return si > sj
			}
			return candidates[i].ref.Column < candidates[j].ref.Column
		})
		d.PrimaryKeys[table] = candidates[0].ref
	}
	// Unary inclusion dependencies into unique columns (FK candidates).
	for _, dep := range cols {
		if len(dep.distinct) == 0 {
			continue
		}
		for _, ref := range cols {
			if dep == ref || !ref.unique || dep.typ != ref.typ {
				continue
			}
			if dep.ref.Table == ref.ref.Table && dep.ref.Column == ref.ref.Column {
				continue
			}
			if containsAllSorted(ref.distinct, dep.distinct) {
				d.Inclusions = append(d.Inclusions, Inclusion{Dependent: dep.ref, Referenced: ref.ref})
			}
		}
	}
	sort.Slice(d.Inclusions, func(i, j int) bool {
		a, b := d.Inclusions[i], d.Inclusions[j]
		if a.Dependent.String() != b.Dependent.String() {
			return a.Dependent.String() < b.Dependent.String()
		}
		return a.Referenced.String() < b.Referenced.String()
	})
	return d
}

// containsAllSorted reports whether every element of sub also appears in
// super. Both slices are lexicographically sorted and duplicate-free, so
// a single linear merge (with endpoint quick-rejects) decides inclusion —
// no hash probes, and disjoint ranges reject in O(1).
func containsAllSorted(super, sub []string) bool {
	if len(sub) > len(super) {
		return false
	}
	if len(sub) == 0 {
		return true
	}
	if sub[0] < super[0] || sub[len(sub)-1] > super[len(super)-1] {
		return false
	}
	j := 0
	for _, s := range sub {
		for j < len(super) && super[j] < s {
			j++
		}
		if j >= len(super) || super[j] != s {
			return false
		}
		j++
	}
	return true
}

// isUnique reports whether the column was discovered unique.
func isUnique(d *Discovery, ref relational.ColumnRef) bool {
	for _, u := range d.Unique {
		if u == ref {
			return true
		}
	}
	return false
}

// tableStem reduces a table name to a singular-ish lowercase stem for
// name-affinity checks (e.g. "artists" -> "artist").
func tableStem(table string) string {
	stem := strings.TrimSuffix(strings.ToLower(table), "s")
	if len(stem) < 3 {
		return strings.ToLower(table)
	}
	return stem
}

// keyNameScore ranks column names by how much they look like a key.
func keyNameScore(name string) int {
	n := strings.ToLower(name)
	switch {
	case n == "id":
		return 3
	case strings.HasSuffix(n, "_id") || strings.HasSuffix(n, "id"):
		return 2
	case strings.Contains(n, "key") || strings.Contains(n, "code"):
		return 1
	default:
		return 0
	}
}

// AugmentSchema adds discovered constraints to the schema, skipping any
// that are already declared. It returns the number of constraints added.
// This implements the paper's completeness requirement: business rules
// enforced only at the application level become visible to the estimator.
func AugmentSchema(db *relational.Database, d *Discovery) int {
	s := db.Schema
	added := 0
	// Add discovered primary keys in sorted table order: constraints land
	// in the schema's constraint list in insertion order, and Validate()
	// reports violations in that order, so map-order insertion would leak
	// into the report output.
	tables := make([]string, 0, len(d.PrimaryKeys))
	for table := range d.PrimaryKeys {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		ref := d.PrimaryKeys[table]
		if _, has := s.PrimaryKeyOf(table); !has {
			if s.AddConstraint(relational.PrimaryKey{Table: table, Columns: []string{ref.Column}}) == nil {
				added++
			}
		}
	}
	for _, ref := range d.NotNull {
		if !s.NotNull(ref.Table, ref.Column) {
			if s.AddConstraint(relational.NotNullConstraint{Table: ref.Table, Column: ref.Column}) == nil {
				added++
			}
		}
	}
	for _, ref := range d.Unique {
		if !s.Unique(ref.Table, ref.Column) {
			if s.AddConstraint(relational.UniqueConstraint{Table: ref.Table, Columns: []string{ref.Column}}) == nil {
				added++
			}
		}
	}
	declared := make(map[string]struct{})
	for _, fk := range s.ForeignKeys() {
		if len(fk.Columns) == 1 {
			declared[fk.Table+"."+fk.Columns[0]+">"+fk.RefTable+"."+fk.RefColumns[0]] = struct{}{}
		}
	}
	for _, inc := range d.Inclusions {
		// Only adopt inclusions into discovered or declared keys of
		// *other* tables as foreign keys.
		if inc.Dependent.Table == inc.Referenced.Table {
			continue
		}
		pk, ok := d.PrimaryKeys[inc.Referenced.Table]
		if !ok || pk != inc.Referenced {
			continue
		}
		// Guard against spurious inclusions between dense integer
		// serials (every id range includes every shorter one): the
		// dependent column must not itself be a key, and its name must
		// show some affinity to a reference — an id-ish suffix or the
		// referenced table's name stem.
		if isUnique(d, inc.Dependent) {
			continue
		}
		if keyNameScore(inc.Dependent.Column) == 0 &&
			!strings.Contains(strings.ToLower(inc.Dependent.Column), tableStem(inc.Referenced.Table)) {
			continue
		}
		key := inc.Dependent.String() + ">" + inc.Referenced.String()
		if _, has := declared[key]; has {
			continue
		}
		fk := relational.ForeignKey{
			Table: inc.Dependent.Table, Columns: []string{inc.Dependent.Column},
			RefTable: inc.Referenced.Table, RefColumns: []string{inc.Referenced.Column},
		}
		if s.AddConstraint(fk) == nil {
			added++
		}
	}
	return added
}
