package profile

import (
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"efes/internal/relational"
)

// Approximate-mode properties: deterministic output at any worker count,
// every approximate profile marked with its error bounds, sketch
// estimates within those bounds on known distributions, and the exact
// JSON shape unchanged (Approx omitted when nil).

func TestApproxDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, typ := range allTypes {
		for _, n := range []int{0, 1, 7, 400} {
			db := randomDB(t, rng, typ, n)
			vec := db.Vector("t", "c")
			want := FromVectorApprox("t", "c", vec, 1)
			for _, workers := range []int{2, 3, 8} {
				ctx := typ.String() + "/approx/n" + strconv.Itoa(n) + "/w" + strconv.Itoa(workers)
				statsEqual(t, ctx, want, FromVectorApprox("t", "c", vec, workers))
			}
			for _, dst := range allTypes {
				wantC, wantInc := FromVectorCoercedApprox("t", "c", vec, dst, 1)
				for _, workers := range []int{2, 8} {
					gotC, gotInc := FromVectorCoercedApprox("t", "c", vec, dst, workers)
					cctx := typ.String() + "->" + dst.String() + "/approx/w" + strconv.Itoa(workers)
					if wantInc != gotInc {
						t.Errorf("%s: incompatible: want %d, got %d", cctx, wantInc, gotInc)
					}
					statsEqual(t, cctx, wantC, gotC)
				}
			}
		}
	}
}

func TestApproxDeterministicMultiChunk(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk columns are slow to build")
	}
	rng := rand.New(rand.NewSource(6))
	for _, typ := range []relational.Type{relational.Integer, relational.String} {
		db := randomDB(t, rng, typ, relational.ChunkSize+777)
		vec := db.Vector("t", "c")
		want := FromVectorApprox("t", "c", vec, 1)
		for _, workers := range []int{2, 4, 8} {
			ctx := typ.String() + "/approx/multichunk/w" + strconv.Itoa(workers)
			statsEqual(t, ctx, want, FromVectorApprox("t", "c", vec, workers))
		}
	}
}

func TestApproxAlwaysMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, typ := range allTypes {
		db := randomDB(t, rng, typ, 200)
		vec := db.Vector("t", "c")
		if cs := FromVectorApprox("t", "c", vec, 2); cs.Approx == nil {
			t.Errorf("%v: approximate profile not marked", typ)
		}
		if cs := FromVectorSharded("t", "c", vec, 2); cs.Approx != nil {
			t.Errorf("%v: exact profile carries Approx marker", typ)
		}
		for _, dst := range allTypes {
			if cs, _ := FromVectorCoercedApprox("t", "c", vec, dst, 2); cs.Approx == nil {
				t.Errorf("%v->%v: approximate coerced profile not marked", typ, dst)
			}
			if cs, _ := FromVectorCoercedSharded("t", "c", vec, dst, 2); cs.Approx != nil {
				t.Errorf("%v->%v: exact coerced profile carries Approx marker", typ, dst)
			}
		}
	}
}

// TestApproxWithinBounds checks the documented error bounds on a known
// distribution: a zipf-ish integer column whose exact profile is
// computable.
func TestApproxWithinBounds(t *testing.T) {
	s := relational.NewSchema("prop")
	tab, err := relational.NewTable("t", relational.Column{Name: "c", Type: relational.Integer})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := s.AddTable(tab); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	db := relational.NewDatabase(s)
	// 100 heavy values (frequency 50 each) + 5000 singletons.
	rows := 0
	for v := int64(0); v < 100; v++ {
		for j := 0; j < 50; j++ {
			db.MustInsert("t", v)
			rows++
		}
	}
	for v := int64(1000); v < 6000; v++ {
		db.MustInsert("t", v)
		rows++
	}
	vec := db.Vector("t", "c")
	exact := FromVector("t", "c", vec)
	approx := FromVectorApprox("t", "c", vec, 3)
	if approx.Approx == nil {
		t.Fatal("approximate profile not marked")
	}
	// Exact row statistics stay exact.
	if approx.Rows != exact.Rows || approx.Nulls != exact.Nulls || !bitsEq(approx.Fill, exact.Fill) {
		t.Errorf("rows/nulls/fill diverged: %d/%d/%v vs %d/%d/%v",
			approx.Rows, approx.Nulls, approx.Fill, exact.Rows, exact.Nulls, exact.Fill)
	}
	// Distinct within 4x the documented relative error.
	relErr := math.Abs(float64(approx.Distinct)-float64(exact.Distinct)) / float64(exact.Distinct)
	if relErr > 4*approx.Approx.DistinctRelErr {
		t.Errorf("distinct %d vs exact %d: relative error %.4f > 4x documented %.4f",
			approx.Distinct, exact.Distinct, relErr, approx.Approx.DistinctRelErr)
	}
	// The heavy values' counts are far above N/k, so the top-10 must be
	// exactly the exact top-10 (values 0..99 all have count 50; ties
	// break by value string) and counts must bracket truth.
	if len(approx.TopK) != len(exact.TopK) {
		t.Fatalf("topk size %d vs exact %d", len(approx.TopK), len(exact.TopK))
	}
	for i, vc := range approx.TopK {
		if vc.Value != exact.TopK[i].Value {
			t.Errorf("topk[%d]: value %q vs exact %q", i, vc.Value, exact.TopK[i].Value)
		}
		if vc.Count < exact.TopK[i].Count || vc.Count > exact.TopK[i].Count+approx.Approx.TopKCountErr {
			t.Errorf("topk[%d]: count %d outside [%d, %d+%d]", i, vc.Count,
				exact.TopK[i].Count, exact.TopK[i].Count, approx.Approx.TopKCountErr)
		}
	}
	// Moments: count/min/max exact, mean within float round-off.
	if !bitsEq(approx.Min, exact.Min) || !bitsEq(approx.Max, exact.Max) {
		t.Errorf("min/max [%v, %v] vs exact [%v, %v]", approx.Min, approx.Max, exact.Min, exact.Max)
	}
	if math.Abs(approx.Mean.Mean-exact.Mean.Mean) > 1e-9*math.Abs(exact.Mean.Mean) {
		t.Errorf("mean %v vs exact %v", approx.Mean.Mean, exact.Mean.Mean)
	}
	if math.Abs(approx.Mean.StdDev-exact.Mean.StdDev) > 1e-9*exact.Mean.StdDev {
		t.Errorf("stddev %v vs exact %v", approx.Mean.StdDev, exact.Mean.StdDev)
	}
	// Histogram mass is preserved even if buckets shifted.
	mass := 0
	for _, b := range approx.NumHist.Buckets {
		mass += b
	}
	if mass != rows {
		t.Errorf("histogram mass %d, want %d", mass, rows)
	}
	if approx.Constancy < 0 || approx.Constancy > 1 {
		t.Errorf("constancy %v outside [0,1]", approx.Constancy)
	}
}

// TestApproxJSONCompat pins the on-the-wire contract: an exact profile's
// JSON must not mention Approx at all (byte-compat with the pre-sketch
// format), an approximate profile's must.
func TestApproxJSONCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := randomDB(t, rng, relational.String, 50)
	vec := db.Vector("t", "c")
	exactJSON, err := json.Marshal(FromVector("t", "c", vec))
	if err != nil {
		t.Fatalf("marshal exact: %v", err)
	}
	if strings.Contains(string(exactJSON), "Approx") {
		t.Errorf("exact profile JSON mentions Approx: %s", exactJSON)
	}
	approxJSON, err := json.Marshal(FromVectorApprox("t", "c", vec, 2))
	if err != nil {
		t.Fatalf("marshal approx: %v", err)
	}
	if !strings.Contains(string(approxJSON), "Approx") {
		t.Errorf("approximate profile JSON lacks Approx marker: %s", approxJSON)
	}
	// Round-trip keeps the marker.
	var back ColumnStats
	if err := json.Unmarshal(approxJSON, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Approx == nil {
		t.Error("Approx marker lost in JSON round-trip")
	}
}
