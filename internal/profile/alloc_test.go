package profile

import (
	"fmt"
	"math/rand"
	"testing"

	"efes/internal/relational"
)

// repeatedStringVector builds a string column of n rows cycling through
// d distinct integer renderings.
func repeatedStringVector(t *testing.T, n, d int) *relational.ColumnVector {
	t.Helper()
	s := relational.NewSchema("alloc")
	tab, err := relational.NewTable("t", relational.Column{Name: "c", Type: relational.String})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		db.MustInsert("t", fmt.Sprintf("%d", rng.Intn(d)))
	}
	vec := db.Vector("t", "c")
	if vec == nil {
		t.Fatal("Vector returned nil")
	}
	return vec
}

// TestCoercedFromStringAllocBound is the hotalloc regression for the
// fused coercion kernel: profiling a string column as integers must
// allocate O(distinct) times, not O(rows) — parsing runs once per
// dictionary entry through the typed helpers with no per-value boxing.
func TestCoercedFromStringAllocBound(t *testing.T) {
	const rows, distinct = 4096, 8
	vec := repeatedStringVector(t, rows, distinct)
	allocs := testing.AllocsPerRun(5, func() {
		FromVectorCoerced("t", "c", vec, relational.Integer)
	})
	// Generous fixed overhead (stats struct, count map, dense vector,
	// finish helpers) plus a few per distinct value; far below one per
	// row, which is what a reintroduced per-value allocation would cost.
	if limit := float64(64 + 8*distinct); allocs > limit {
		t.Errorf("FromVectorCoerced(string→int, %d rows, %d distinct): %v allocs/op, want ≤ %v",
			rows, distinct, allocs, limit)
	}
}
