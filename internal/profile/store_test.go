package profile

// Tests for the durable read-through store hook: bit-identical
// round-trips through the JSON envelope, warm starts across Profiler
// instances (the restart story), content-address invalidation on data
// mutation, and the errors-never-persisted contract.

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"efes/internal/faultinject"
	"efes/internal/relational"
)

// memStore is an in-memory Store for tests.
type memStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	puts int
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[key]
	return d, ok
}

func (s *memStore) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
	s.puts++
}

func (s *memStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func TestStoreWarmStartServesWithoutRecompute(t *testing.T) {
	db := profilerDB(t)
	store := newMemStore()

	p1 := NewProfiler(1).SetStore(store)
	cold, err := p1.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	if dh, comp := p1.DiskCounters(); dh != 0 || comp != 1 {
		t.Errorf("cold counters = %d disk hits / %d computes, want 0/1", dh, comp)
	}
	if store.len() != 1 {
		t.Fatalf("store entries = %d, want 1", store.len())
	}

	// A fresh Profiler (fresh memo — the restarted process) over the same
	// data is served from the store, not recomputed.
	p2 := NewProfiler(1).SetStore(store)
	warm, err := p2.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	if dh, comp := p2.DiskCounters(); dh != 1 || comp != 0 {
		t.Errorf("warm counters = %d disk hits / %d computes, want 1/0", dh, comp)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("round-tripped stats differ:\ncold %+v\nwarm %+v", cold, warm)
	}
	// Float fields survive bit-exactly (encoding/json round-trips float64).
	if math.Float64bits(cold.Constancy) != math.Float64bits(warm.Constancy) ||
		math.Float64bits(cold.StringLength.Mean) != math.Float64bits(warm.StringLength.Mean) {
		t.Error("float statistics not bit-identical after round trip")
	}
}

func TestStoreCoercedViewRoundTrip(t *testing.T) {
	db := profilerDB(t)
	store := newMemStore()
	p1 := NewProfiler(1).SetStore(store)
	cold, coldInc, err := p1.ColumnCoerced(db, "songs", "title", relational.Integer)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewProfiler(1).SetStore(store)
	warm, warmInc, err := p2.ColumnCoerced(db, "songs", "title", relational.Integer)
	if err != nil {
		t.Fatal(err)
	}
	if coldInc != warmInc {
		t.Errorf("incompatible count lost in round trip: %d vs %d", coldInc, warmInc)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("coerced stats differ:\ncold %+v\nwarm %+v", cold, warm)
	}
	if dh, comp := p2.DiskCounters(); dh != 1 || comp != 0 {
		t.Errorf("warm coerced counters = %d/%d, want 1/0", dh, comp)
	}
}

func TestStoreKeyTracksContent(t *testing.T) {
	db := profilerDB(t)
	store := newMemStore()
	p := NewProfiler(1).SetStore(store)
	if _, err := p.Column(db, "songs", "title"); err != nil {
		t.Fatal(err)
	}
	// Mutating the table moves the content address: a fresh profiler
	// must recompute, not serve the stale profile.
	db.MustInsert("songs", "Bohemian Rhapsody", int64(354000))
	p2 := NewProfiler(1).SetStore(store)
	stats, err := p2.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	if dh, comp := p2.DiskCounters(); dh != 0 || comp != 1 {
		t.Errorf("post-mutation counters = %d disk hits / %d computes, want 0/1", dh, comp)
	}
	if stats.Rows != 4 {
		t.Errorf("rows = %d, want 4 (stale profile served)", stats.Rows)
	}
	if store.len() != 2 {
		t.Errorf("store entries = %d, want 2 (old and new address)", store.len())
	}
}

func TestStoreGarbageIsIgnoredAndRepaired(t *testing.T) {
	db := profilerDB(t)
	store := newMemStore()
	p := NewProfiler(1).SetStore(store)
	want, err := p.Column(db, "songs", "length")
	if err != nil {
		t.Fatal(err)
	}
	// Replace every stored entry with garbage / mismatched identities.
	store.mu.Lock()
	var keys []string
	for k := range store.m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		store.m[k] = []byte("{not json")
	}
	store.mu.Unlock()

	p2 := NewProfiler(1).SetStore(store)
	got, err := p2.Column(db, "songs", "length")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("garbage entry changed the computed profile")
	}
	if dh, comp := p2.DiskCounters(); dh != 0 || comp != 1 {
		t.Errorf("counters = %d/%d, want recompute on garbage", dh, comp)
	}

	// A wrong-identity envelope (valid JSON, different column) is
	// rejected by the sanity check too.
	other, err := p.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(statsEnvelope{Stats: other})
	if err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	for _, k := range keys {
		store.m[k] = data
	}
	store.mu.Unlock()
	p3 := NewProfiler(1).SetStore(store)
	if _, err := p3.Column(db, "songs", "length"); err != nil {
		t.Fatal(err)
	}
	if dh, comp := p3.DiskCounters(); dh != 0 || comp != 1 {
		t.Errorf("counters = %d/%d, want recompute on identity mismatch", dh, comp)
	}
}

// TestStoreModeIsolation is the regression test for the cache-poisoning
// fix: an approximate profile must never warm the exact cache (or vice
// versa). An approx run followed by an exact run over the same bytes
// recomputes; a repeated run in the same mode is a disk hit.
func TestStoreModeIsolation(t *testing.T) {
	db := profilerDB(t)
	store := newMemStore()

	// 1. Approximate run: computes and persists under the approx key.
	pa := NewProfiler(1).SetStore(store).SetMode(ModeApprox)
	approx, err := pa.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	if approx.Approx == nil {
		t.Fatal("approx-mode profile not marked")
	}
	if dh, comp := pa.DiskCounters(); dh != 0 || comp != 1 {
		t.Fatalf("approx cold counters = %d/%d, want 0/1", dh, comp)
	}

	// 2. Exact run over the same bytes and store: must recompute — the
	// approx entry must not be served where an exact profile was asked.
	pe := NewProfiler(1).SetStore(store) // ModeExact is the zero value
	exact, err := pe.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	if dh, comp := pe.DiskCounters(); dh != 0 || comp != 1 {
		t.Errorf("exact-after-approx counters = %d disk hits / %d computes, want 0/1 (approx entry warmed the exact cache)", dh, comp)
	}
	if exact.Approx != nil {
		t.Error("exact profile carries Approx marker after approx run")
	}
	if store.len() != 2 {
		t.Errorf("store entries = %d, want 2 (one per mode)", store.len())
	}

	// 3. Same-mode reruns on fresh profilers are disk hits in both modes.
	pa2 := NewProfiler(1).SetStore(store).SetMode(ModeApprox)
	warmApprox, err := pa2.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	if dh, comp := pa2.DiskCounters(); dh != 1 || comp != 0 {
		t.Errorf("approx warm counters = %d/%d, want 1/0", dh, comp)
	}
	if !reflect.DeepEqual(approx, warmApprox) {
		t.Error("approx profile changed through the store round trip")
	}
	pe2 := NewProfiler(1).SetStore(store)
	if _, err := pe2.Column(db, "songs", "title"); err != nil {
		t.Fatal(err)
	}
	if dh, comp := pe2.DiskCounters(); dh != 1 || comp != 0 {
		t.Errorf("exact warm counters = %d/%d, want 1/0", dh, comp)
	}

	// 4. The exported key derivations agree and separate the modes.
	col, _ := db.Schema.Table("songs").Column("title")
	ek, ok := StatsKeyFor(db, "songs", "title", col.Type, false, ModeExact)
	if !ok {
		t.Fatal("StatsKeyFor failed for a known table")
	}
	ak, ok := StatsKeyFor(db, "songs", "title", col.Type, false, ModeApprox)
	if !ok {
		t.Fatal("StatsKeyFor(approx) failed for a known table")
	}
	if ek == ak {
		t.Error("exact and approx stats keys collide")
	}
	for _, k := range []string{ek, ak} {
		if _, ok := store.Get(k); !ok {
			t.Errorf("derived key %s not present in the store", k)
		}
	}
}

func TestFaultStoreErrorsAreNeverPersisted(t *testing.T) {
	defer faultinject.Reset()
	db := profilerDB(t)
	store := newMemStore()
	p := NewProfiler(1).SetStore(store)
	faultinject.Enable("profile:column", faultinject.Fault{
		Kind: faultinject.Error, Err: errors.New("injected"), Times: 1,
	})
	if _, err := p.Column(db, "songs", "title"); err == nil {
		t.Fatal("want injected error")
	}
	if store.len() != 0 || store.puts != 0 {
		t.Fatalf("failed computation reached the store: %d entries, %d puts", store.len(), store.puts)
	}
	// The failure was transient: the retry computes and persists.
	if _, err := p.Column(db, "songs", "title"); err != nil {
		t.Fatal(err)
	}
	if store.len() != 1 {
		t.Errorf("store entries = %d, want 1 after recovery", store.len())
	}
}
