package profile

import (
	"math"
	"sync"
	"testing"

	"efes/internal/relational"
)

func profilerDB(t *testing.T) *relational.Database {
	t.Helper()
	s := relational.NewSchema("db")
	s.MustAddTable(relational.MustTable("songs",
		relational.Column{Name: "title", Type: relational.String},
		relational.Column{Name: "length", Type: relational.Integer},
	))
	db := relational.NewDatabase(s)
	db.MustInsert("songs", "Sweet Home Alabama", int64(215900))
	db.MustInsert("songs", "Smoke on the Water", int64(340000))
	db.MustInsert("songs", nil, nil)
	return db
}

func TestProfilerMemoizesColumn(t *testing.T) {
	db := profilerDB(t)
	p := NewProfiler(2)
	a, err := p.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Column(db, "songs", "title")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second lookup must return the cached *ColumnStats")
	}
	if hits, misses := p.Counters(); hits != 1 || misses != 1 {
		t.Errorf("counters = %d hits / %d misses, want 1/1", hits, misses)
	}
	if p.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", p.HitRate())
	}
	if a.Rows != 3 || a.Nulls != 1 || a.Distinct != 2 {
		t.Errorf("stats = %d rows, %d nulls, %d distinct", a.Rows, a.Nulls, a.Distinct)
	}
}

func TestProfilerCoercedViewIsSeparateEntry(t *testing.T) {
	db := profilerDB(t)
	p := NewProfiler(1)
	raw, err := p.Column(db, "songs", "length")
	if err != nil {
		t.Fatal(err)
	}
	asString, incompatible, err := p.ColumnCoerced(db, "songs", "length", relational.String)
	if err != nil {
		t.Fatal(err)
	}
	if incompatible != 0 {
		t.Errorf("incompatible = %d, want 0 (integers cast to strings)", incompatible)
	}
	if raw == asString {
		t.Error("raw and coerced views must be distinct cache entries")
	}
	if !raw.HasNumeric || asString.HasNumeric {
		t.Error("raw view is numeric, string-coerced view is not")
	}
	if p.Len() != 2 {
		t.Errorf("entries = %d, want 2", p.Len())
	}
	// Incompatible values are dropped and counted.
	_, bad, err := p.ColumnCoerced(db, "songs", "title", relational.Integer)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 2 {
		t.Errorf("incompatible = %d, want 2 (titles do not cast to int)", bad)
	}
}

func TestProfilerUnknownColumn(t *testing.T) {
	db := profilerDB(t)
	p := NewProfiler(1)
	if _, err := p.Column(db, "songs", "ghost"); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := p.Column(db, "ghosts", "title"); err == nil {
		t.Error("unknown table must error")
	}
	if _, _, err := p.ColumnCoerced(db, "ghosts", "title", relational.String); err == nil {
		t.Error("unknown table must error in coerced view")
	}
}

func TestProfilerProfileDatabase(t *testing.T) {
	db := profilerDB(t)
	p := NewProfiler(4)
	all, err := p.ProfileDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("profiles = %d, want 2", len(all))
	}
	if all[0].Column != "title" || all[1].Column != "length" {
		t.Errorf("order = %s, %s; want schema order", all[0].Column, all[1].Column)
	}
	cols, err := p.ProfileTable(db, "songs")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != all[0] || cols[1] != all[1] {
		t.Error("ProfileTable must serve from the same cache in schema order")
	}
}

// TestProfilerConcurrentSharing hammers one Profiler from many goroutines:
// every caller must observe the same memoized profile and the underlying
// profiling work must run exactly once per distinct key (in-flight
// deduplication). Run with -race.
func TestProfilerConcurrentSharing(t *testing.T) {
	db := profilerDB(t)
	p := NewProfiler(4)
	const goroutines = 32
	results := make([]*ColumnStats, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, err := p.Column(db, "songs", "title")
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := p.ColumnCoerced(db, "songs", "length", relational.String); err != nil {
				t.Error(err)
			}
			results[i] = cs
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatal("goroutines observed different profile instances")
		}
	}
	if _, misses := p.Counters(); misses != 2 {
		t.Errorf("misses = %d, want 2 (one per distinct key)", misses)
	}
	if p.HitRate() < 0.9 {
		t.Errorf("hit rate = %v, want > 0.9 under contention", p.HitRate())
	}
}

func TestProfilerReset(t *testing.T) {
	db := profilerDB(t)
	p := NewProfiler(1)
	if _, err := p.Column(db, "songs", "title"); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.Len() != 0 {
		t.Error("reset must drop entries")
	}
	if h, m := p.Counters(); h != 0 || m != 0 {
		t.Errorf("counters after reset = %d/%d", h, m)
	}
}

// TestValuesWithNonFiniteNumbers is the regression test for the histogram
// bucket-index panic: profiling a column containing ±Inf used to convert
// NaN bucket positions straight to int and index out of bounds.
func TestValuesWithNonFiniteNumbers(t *testing.T) {
	vals := []relational.Value{math.Inf(1), math.Inf(-1), 3.0, 4.0, nil}
	cs := Values("t", "c", relational.Float, vals)
	if cs.Rows != 5 || cs.Nulls != 1 || !cs.HasNumeric {
		t.Errorf("stats = %d rows, %d nulls, numeric %v", cs.Rows, cs.Nulls, cs.HasNumeric)
	}
	total := 0
	for _, n := range cs.NumHist.Buckets {
		total += n
	}
	if total != 4 {
		t.Errorf("histogram holds %d values, want 4", total)
	}
}
