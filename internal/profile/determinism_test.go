package profile

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"efes/internal/relational"
)

func TestConstancyBitIdenticalAcrossProfiles(t *testing.T) {
	// A skewed distribution with many distinct values: its entropy is a
	// float sum over the counts, which is only repeatable when the counts
	// are visited in a fixed order. Profile the same column repeatedly and
	// demand bit-identical constancy.
	values := make([]relational.Value, 0, 120)
	for i := 0; i < 40; i++ {
		values = append(values, fmt.Sprintf("rare-%02d", i))
	}
	for i := 0; i < 40; i++ {
		values = append(values, "common")
	}
	for i := 0; i < 20; i++ {
		values = append(values, fmt.Sprintf("mid-%d", i%5))
	}
	first := Values("t", "c", relational.String, values)
	for i := 0; i < 50; i++ {
		again := Values("t", "c", relational.String, values)
		if again.Constancy != first.Constancy {
			t.Fatalf("profile %d: constancy %v != %v", i, again.Constancy, first.Constancy)
		}
	}
}

func discoveryDB(t *testing.T) *relational.Database {
	t.Helper()
	s := relational.NewSchema("db")
	s.MustAddTable(relational.MustTable("artists",
		relational.Column{Name: "id", Type: relational.Integer},
		relational.Column{Name: "name", Type: relational.String},
	))
	s.MustAddTable(relational.MustTable("albums",
		relational.Column{Name: "id", Type: relational.Integer},
		relational.Column{Name: "title", Type: relational.String},
	))
	s.MustAddTable(relational.MustTable("tracks",
		relational.Column{Name: "id", Type: relational.Integer},
		relational.Column{Name: "name", Type: relational.String},
	))
	db := relational.NewDatabase(s)
	db.MustInsert("artists", int64(1), "a")
	db.MustInsert("artists", int64(2), "b")
	db.MustInsert("albums", int64(10), "x")
	db.MustInsert("albums", int64(20), "y")
	db.MustInsert("tracks", int64(100), "s")
	db.MustInsert("tracks", int64(200), "u")
	return db
}

func TestAugmentSchemaConstraintOrderDeterministic(t *testing.T) {
	// Discovered primary keys live in a map keyed by table; AugmentSchema
	// must insert them in sorted table order so the schema's constraint
	// list — and every Validate() report derived from it — is identical
	// across runs.
	render := func() string {
		db := discoveryDB(t)
		d := Discover(db)
		AugmentSchema(db, d)
		out := ""
		for _, c := range db.Schema.Constraints {
			out += fmt.Sprintf("%v\n", c)
		}
		return out
	}
	first := render()
	for i := 0; i < 20; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d: constraint order changed:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestProfilerDoesNotCacheErrors(t *testing.T) {
	p := NewProfiler(2)
	key := profileKey{table: "t", column: "c"}
	boom := errors.New("transient failure")
	calls := 0
	compute := func() (*ColumnStats, int, error) {
		calls++
		if calls == 1 {
			return nil, 0, boom
		}
		return &ColumnStats{Table: "t", Column: "c"}, 0, nil
	}
	if _, _, err := p.get(context.Background(), key, compute); !errors.Is(err, boom) {
		t.Fatalf("first get: err = %v, want the transient failure", err)
	}
	if p.Len() != 0 {
		t.Fatalf("failed computation left %d cache entries, want 0", p.Len())
	}
	cs, _, err := p.get(context.Background(), key, compute)
	if err != nil {
		t.Fatalf("second get after transient failure: %v", err)
	}
	if cs == nil || calls != 2 {
		t.Fatalf("second get did not recompute (calls = %d)", calls)
	}
	if p.Len() != 1 {
		t.Errorf("successful computation cached %d entries, want 1", p.Len())
	}
}

func TestProfilerWaiterRetriesAfterFailedComputation(t *testing.T) {
	p := NewProfiler(2)
	key := profileKey{table: "t", column: "c"}
	release := make(chan struct{})
	firstErr := make(chan error, 1)
	go func() {
		_, _, err := p.get(context.Background(), key, func() (*ColumnStats, int, error) {
			<-release
			return nil, 0, errors.New("owner failed")
		})
		firstErr <- err
	}()
	// Wait until the owner has installed its in-flight entry, then start a
	// waiter that piggybacks on it.
	deadline := time.Now().Add(2 * time.Second)
	for p.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner never installed its cache entry")
		}
		time.Sleep(time.Millisecond)
	}
	waiterDone := make(chan *ColumnStats, 1)
	go func() {
		cs, _, err := p.get(context.Background(), key, func() (*ColumnStats, int, error) {
			return &ColumnStats{Table: "t", Column: "c"}, 0, nil
		})
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		waiterDone <- cs
	}()
	// Once the waiter is blocked on the entry (visible as a cache hit),
	// let the owner fail.
	for h, _ := p.Counters(); h == 0; h, _ = p.Counters() {
		if time.Now().After(deadline) {
			t.Fatal("waiter never reached the cache entry")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-firstErr; err == nil {
		t.Error("owner should have received its computation error")
	}
	select {
	case cs := <-waiterDone:
		if cs == nil {
			t.Error("waiter got nil stats")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not retry after the owner's failure")
	}
	if p.Len() != 1 {
		t.Errorf("cache holds %d entries, want the waiter's successful one", p.Len())
	}
}
