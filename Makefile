# Tier-1 verification: build, vet, and the full test suite under the race
# detector (the concurrency layer — profiler cache, parallel detectors,
# parallel experiment grid — must stay race-clean). The resilience suite
# (fault injection, deadlines, graceful degradation) runs a second,
# focused pass so a fault-harness regression is reported by name, and
# efeslint enforces the cross-cutting invariants (DESIGN.md §8).
.PHONY: verify build test bench bench-smoke faults lint efesd-smoke

verify:
	go build ./...
	go vet ./...
	go test -race ./...
	go test -race -run 'Fault|Resilience' ./...
	go test -race -run 'KillRestart|GracefulDrain|EvictionSmoke' ./cmd/efesd/
	go run ./cmd/efeslint ./...

# efeslint: the in-tree static analyzer (internal/lint). Exits nonzero on
# any finding; see `go run ./cmd/efeslint -list` for the rules.
lint:
	go run ./cmd/efeslint ./...

# The fault-injection and resilience suite alone, twice, to shake out
# order- and state-dependent behavior in the harness (arming/Reset).
faults:
	go test -race -count=2 -run 'Fault|Resilience' ./...

# Daemon crash-safety smoke: SIGKILL a real efesd mid-workload, restart
# over the same cache directory, assert byte-identical warm answers with
# zero recomputed profiles; plus the SIGTERM graceful drain. The child
# is the production main() re-exec'd, so the flock release, the ready
# line, and the signal handling are all the shipped code paths.
efesd-smoke:
	go test -race -run 'KillRestart|GracefulDrain|EvictionSmoke' ./cmd/efesd/

build:
	go build ./...

test:
	go test ./...

# Full benchmark run, captured as machine-readable JSON (cmd/benchjson).
# Appends to BENCH_10.json so before/after runs can live side by side:
#   make bench LABEL=after
# (BENCH_6.json holds the pre-sharding trajectory for comparison.)
LABEL ?= current
bench:
	go run ./cmd/benchjson -bench . -label $(LABEL) -append -out BENCH_10.json

# Compile-and-smoke: every benchmark runs exactly one iteration (-short
# skips the XLarge tier, whose million-tuple scenario generation alone
# takes tens of seconds). Keeps bench-only code (bench_test.go,
# LargeExampleConfig) from bitrotting without paying for a full
# measurement run; wired into CI. The second step is the perf regression
# gate: FullEstimateLarge must stay under its ceiling (the interned CSG
# instance brought it from ~800ms to <50ms on the reference machine;
# 250ms leaves headroom for slow CI hardware while still catching a
# return to the string-instance regime). The third gates the profiling
# kernels the same way: ProfileDatabaseLarge ran ~15 ms at BENCH_6 and
# must not creep back toward the row-path regime — 75 ms applies the
# same ~5x slow-hardware headroom — and the sharded variant must not
# cost more than the single-worker pass it parallelizes.
bench-smoke:
	go test -short -run '^$$' -bench . -benchtime 1x .
	go run ./cmd/benchjson -bench '^BenchmarkFullEstimateLarge$$' -benchtime 3x \
		-out '' -assert BenchmarkFullEstimateLarge=250ms
	go run ./cmd/benchjson -bench '^BenchmarkProfileDatabaseLarge(Sharded)?$$' -benchtime 3x \
		-out '' -assert 'BenchmarkProfileDatabaseLarge=75ms,BenchmarkProfileDatabaseLargeSharded=75ms'
