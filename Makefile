# Tier-1 verification: build, vet, and the full test suite under the race
# detector (the concurrency layer — profiler cache, parallel detectors,
# parallel experiment grid — must stay race-clean).
.PHONY: verify build test bench

verify:
	go build ./...
	go vet ./...
	go test -race ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .
