# Tier-1 verification: build, vet, and the full test suite under the race
# detector (the concurrency layer — profiler cache, parallel detectors,
# parallel experiment grid — must stay race-clean). The resilience suite
# (fault injection, deadlines, graceful degradation) runs a second,
# focused pass so a fault-harness regression is reported by name, and
# efeslint enforces the cross-cutting invariants (DESIGN.md §8).
.PHONY: verify build test bench faults lint

verify:
	go build ./...
	go vet ./...
	go test -race ./...
	go test -race -run 'Fault|Resilience' ./...
	go run ./cmd/efeslint ./...

# efeslint: the in-tree static analyzer (internal/lint). Exits nonzero on
# any finding; see `go run ./cmd/efeslint -list` for the rules.
lint:
	go run ./cmd/efeslint ./...

# The fault-injection and resilience suite alone, twice, to shake out
# order- and state-dependent behavior in the harness (arming/Reset).
faults:
	go test -race -count=2 -run 'Fault|Resilience' ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .
